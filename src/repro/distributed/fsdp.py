"""Layer-wise Fully Sharded Data Parallelism (Sec. III-C / III-D).

Every parameter tensor is flattened and split into ``world`` equal shards,
one per rank; each rank permanently stores only its shard (plus its shard
of the optimizer moments).  A layer's full parameters exist only
transiently: ``gather_layer`` all-gathers the shards before that layer's
compute and ``release_layer`` frees them after — the "layer wrapping"
optimization that bounds peak memory to one layer's parameters instead of
the whole model's.  After backward, ``reduce_scatter_grads`` leaves each
rank the reduced gradient of exactly its own shard.

The engine runs a *single* real model (shared compute) while maintaining
genuine per-rank shard stores, so the sharding/gather/scatter arithmetic
and the communication volumes are all real.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module
from .comm import ProcessGroup

__all__ = ["FSDPEngine", "shard_array", "unshard_arrays"]


def shard_array(arr: np.ndarray, world: int) -> list[np.ndarray]:
    """Flatten and split into ``world`` equal shards (zero-padded tail)."""
    flat = arr.reshape(-1).astype(np.float32)
    padded_len = -(-flat.size // world) * world
    if padded_len != flat.size:
        flat = np.concatenate([flat, np.zeros(padded_len - flat.size, dtype=np.float32)])
    return [s.copy() for s in np.split(flat, world)]


def unshard_arrays(shards: list[np.ndarray], shape: tuple[int, ...]) -> np.ndarray:
    """Reassemble shards into the original tensor shape."""
    flat = np.concatenate(shards)
    n = int(np.prod(shape))
    if flat.size < n:
        raise ValueError(f"shards hold {flat.size} elements, need {n}")
    return flat[:n].reshape(shape)


class FSDPEngine:
    """Shard a model's parameters layer-by-layer across a process group."""

    def __init__(self, model: Module, group: ProcessGroup):
        self.model = model
        self.group = group
        self.param_names = [name for name, _ in model.named_parameters()]
        self._params = dict(model.named_parameters())
        # per-rank shard store: rank → name → shard
        self.shards: list[dict[str, np.ndarray]] = [dict() for _ in range(group.size)]
        for name, p in self._params.items():
            for rank, shard in enumerate(shard_array(p.data, group.size)):
                self.shards[rank][name] = shard
        self._gathered: set[str] = set()

    # ------------------------------------------------------------------ #
    # memory accounting
    # ------------------------------------------------------------------ #
    def per_rank_param_bytes(self) -> float:
        """Persistent parameter bytes on one rank (the sharded residence)."""
        return sum(s.nbytes for s in self.shards[0].values())

    def peak_param_bytes(self) -> float:
        """Peak = resident shards + the largest single gathered layer."""
        largest = max(p.data.nbytes for p in self._params.values())
        return self.per_rank_param_bytes() + largest

    # ------------------------------------------------------------------ #
    # gather / release / reduce
    # ------------------------------------------------------------------ #
    def gather_layer(self, name: str) -> None:
        """All-gather one parameter's shards into the live model tensor."""
        if name not in self._params:
            raise KeyError(f"unknown parameter {name!r}")
        shards = [self.shards[r][name] for r in range(self.group.size)]
        gathered = self.group.all_gather(shards)[0]
        p = self._params[name]
        p.data[...] = unshard_arrays(
            np.array_split(gathered, self.group.size), p.data.shape
        )
        self._gathered.add(name)

    def gather_all(self) -> None:
        for name in self.param_names:
            self.gather_layer(name)

    def release_layer(self, name: str) -> None:
        """Drop the gathered full tensor (zero it to model freed memory)."""
        self._gathered.discard(name)

    def forward_backward(self, run) -> float:
        """Layer-wise execution: gather → run the whole step → reduce.

        ``run`` is a callable performing forward+backward on ``model`` and
        returning the scalar loss.  In this single-process simulation all
        layers are gathered before the step (compute is shared), but the
        gather/reduce communication is issued layer-by-layer, reproducing
        the real schedule's traffic pattern and volumes.
        """
        self.gather_all()
        loss = run(self.model)
        self.reduce_scatter_grads()
        for name in self.param_names:
            self.release_layer(name)
        return float(loss)

    def reduce_scatter_grads(self) -> list[dict[str, np.ndarray]]:
        """Reduce-scatter all gradients into per-rank shards — bucketed.

        Every rank contributes the full gradient (identical here, since
        compute is shared; in DDP+FSDP each rank's differs) and receives
        the summed gradient of its own shard.  All parameters ride in
        **one** collective: each parameter's ``(world, shard_len)`` stack
        is concatenated along the shard axis into a single
        ``(world, total)`` bucket, reduce-scattered once, and the reduced
        flat rows are split back by span.  The reduction is elementwise,
        so values are bit-identical to per-parameter calls; only the call
        count (and per-call latency) drops.  Returns the per-rank
        gradient-shard dictionaries, keyed by parameter name as before.
        """
        spans: list[tuple[str, int, int]] = []
        stacks = []
        offset = 0
        for name, p in self._params.items():
            g = p.grad if p.grad is not None else np.zeros_like(p.data)
            stacked = np.stack(shard_array(g, self.group.size))  # (world, shard_len)
            spans.append((name, offset, offset + stacked.shape[1]))
            stacks.append(stacked)
            offset += stacked.shape[1]
        bucket = np.concatenate(stacks, axis=1)  # (world, total_shard_len)
        buffers = [bucket.copy() for _ in range(self.group.size)]
        reduced = self.group.reduce_scatter(buffers, op="mean")
        grad_shards: list[dict[str, np.ndarray]] = [dict() for _ in range(self.group.size)]
        for rank, row in enumerate(reduced):
            flat = row.reshape(-1)
            for name, lo, hi in spans:
                grad_shards[rank][name] = flat[lo:hi].copy()
        return grad_shards

    def reshard(self, group: ProcessGroup) -> None:
        """Re-partition the shard store onto a new process group, bitwise.

        The elastic path for FSDP: gather every parameter's shards into
        the live model tensors (an all-gather on the *old* group — the
        export half of the remap), then re-slice them at the new world.
        ``shard_array`` is pure flatten-and-split, so growing or
        shrinking the group never perturbs a value — only the padding
        tail moves.
        """
        self.gather_all()
        old = self.group
        self.group = group
        self.shards = [dict() for _ in range(group.size)]
        for name, p in self._params.items():
            for rank, shard in enumerate(shard_array(p.data, group.size)):
                self.shards[rank][name] = shard
        # import half: the canonical tensors land on the new group's ranks
        if group is not old:
            group.stats.record(
                "broadcast", sum(p.data.nbytes for p in self._params.values()))
        self._gathered.clear()

    def apply_sharded_update(self, grad_shards: list[dict[str, np.ndarray]],
                             lr: float) -> None:
        """SGD on the shards, then re-materialize the model weights.

        Demonstrates the full FSDP optimizer path: each rank updates only
        its shard, and the next gather distributes the updated weights.
        """
        for rank in range(self.group.size):
            for name in self.param_names:
                self.shards[rank][name] -= lr * grad_shards[rank][name]
        self.gather_all()
