"""Hybrid-OP: alternating row/column sharding for matrix chains.

Adopted from ORBIT (Sec. III-D, "Hybrid-OP Parallelism").  For a chain of
matrix multiplications ``x @ W1^T @ W2^T @ ... @ Wk^T``, sharding the
weights in *alternating* column/row orientation exploits the structure of
chain multiplication: a column-sharded layer produces exactly the
feature slices a row-sharded layer consumes, so communication is needed
only after every row layer (one all-reduce per PAIR) instead of an
all-gather after EVERY layer as naive output-sharding requires.  This
halves collective count and volume — the "reduced communication overhead
and frequency" the paper credits Hybrid-OP with.
"""

from __future__ import annotations

import numpy as np

from .comm import ProcessGroup
from .tensor_parallel import split_columns, split_rows

__all__ = ["HybridOpChain", "naive_sharded_chain_volume", "hybrid_chain_volume"]


class HybridOpChain:
    """Execute a matrix chain with alternating column/row sharding.

    ``weights[i]`` has shape (d_{i+1}, d_i); even-indexed weights are
    column-sharded, odd-indexed row-sharded.  With an even-length chain
    the result is mathematically identical to the unsharded chain, with
    one all-reduce per weight pair.
    """

    def __init__(self, weights: list[np.ndarray], group: ProcessGroup):
        if not weights:
            raise ValueError("empty chain")
        if len(weights) % 2:
            raise ValueError("Hybrid-OP pairs layers; need an even-length chain")
        for a, b in zip(weights[:-1], weights[1:]):
            if b.shape[1] != a.shape[0]:
                raise ValueError(f"chain shape mismatch: {a.shape} -> {b.shape}")
        self.group = group
        self.shards: list[list[np.ndarray]] = []
        for i, w in enumerate(weights):
            if i % 2 == 0:
                self.shards.append(split_columns(w, group.size))   # output-sharded
            else:
                self.shards.append(split_rows(w, group.size))      # input-sharded
        self.weights = [w.copy() for w in weights]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the sharded chain; all-reduce only after each row layer."""
        current_full = x.astype(np.float32)
        for i in range(0, len(self.shards), 2):
            col_shards = self.shards[i]
            row_shards = self.shards[i + 1]
            # column layer: replicated input → per-rank slices (no comm)
            slices = [current_full @ w.T for w in col_shards]
            # row layer: per-rank slices → partial sums → ONE all-reduce
            partials = [
                (slices[r] @ row_shards[r].T).astype(np.float32)
                for r in range(self.group.size)
            ]
            current_full = self.group.all_reduce(partials, op="sum")[0]
        return current_full

    def reference(self, x: np.ndarray) -> np.ndarray:
        out = x.astype(np.float64)
        for w in self.weights:
            out = out @ w.T
        return out.astype(np.float32)

    def collectives_issued(self) -> int:
        """All-reduces per forward: one per layer pair."""
        return len(self.shards) // 2


def naive_sharded_chain_volume(batch: int, dims: list[int], world: int) -> float:
    """Bytes/rank for output-sharding every layer + all-gather after each.

    After every layer the (batch, d_out) activation must be all-gathered
    so the next layer sees its full input: volume (P-1)/P · batch·d_out·4
    per layer.
    """
    total = 0.0
    for d_out in dims[1:]:
        total += (world - 1) / world * batch * d_out * 4
    return total


def hybrid_chain_volume(batch: int, dims: list[int], world: int) -> float:
    """Bytes/rank under Hybrid-OP: one all-reduce after every layer PAIR.

    Ring all-reduce moves 2·(P-1)/P · batch·d_out·4 bytes per rank, but
    only at the pair outputs (every second dim).
    """
    if (len(dims) - 1) % 2:
        raise ValueError("need an even number of layers")
    total = 0.0
    for i in range(2, len(dims), 2):
        total += 2 * (world - 1) / world * batch * dims[i] * 4
    return total
