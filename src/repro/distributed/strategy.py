"""One interface over every parallelism: the strategy layer (Sec. III-C).

Before this module, each parallelism was driven by bespoke glue in three
places (``train/distributed_trainer.py``, the equivalence oracle's six
``_run_*`` runners, and the analytic perf model).  :class:`ParallelStrategy`
gives them all one shape:

* ``setup(model_factory, group)`` — build the engine(s) on a process group;
* ``forward(inputs)`` — full-batch inference for output comparison;
* ``forward_backward(inputs, targets)`` — per-unit compute, NO collectives;
* ``reduce_gradients()`` — all gradient communication for the step;
* ``optimizer_params()`` — per-unit ``(params, FlatParamBuffer)`` pairs so
  optimizers adopt the *same* buffer the collectives use (zero re-flatten);
* ``comm_summary()`` / ``reset_comm()`` — per-level byte accounting.

Forward-only engines (tensor parallel, Ulysses, Hybrid-OP, pipeline)
implement ``forward`` + ``reference``; the training methods raise.

:class:`CompositePlan` extends :class:`~.orthogonal.ParallelLayout`'s
algebra to the explicit four-factor decomposition ``tp x fsdp x tiles x
ddp == world`` with the rank layout ``rank = ((d*tiles + t)*fsdp + f)*tp
+ p`` (tensor parallel innermost/contiguous, matching Fig. 5's placement
of TP on the fast in-node links).  :class:`CompositeStrategy` executes
the full stack end-to-end on the virtual cluster:

* one **model unit** per (sample ``d``, tile ``t``) pair — TP ranks of a
  unit share compute (the :class:`~.fsdp.FSDPEngine` philosophy: shared
  arithmetic, genuine traffic), with the per-layer all-reduce volume
  recorded as modelled traffic on the TP groups;
* FSDP reduce-scatters each unit's flat gradient into per-rank shards
  (identical contributions accumulate in float64 — exact);
* the TILES all-reduce averages shards across the tiles of one sample
  (once per batch, Sec. III-B);
* the DDP all-reduce averages across samples;
* an FSDP all-gather re-materialises the full averaged gradient into the
  unit's :class:`~repro.nn.flat.FlatParamBuffer` via ``load_grad`` — the
  pre-attached ``.grad`` views see it with zero copies.

The two ring phases average over all (d, t) units, so every unit ends
with the single-process gradient of the whole batch — the composition
law the oracle verifies.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.tiles import TileSpec, extract_tile, make_tiles, stitch_tiles
from ..nn import Module
from ..obs.tracer import active_tracer, span
from ..nn.flat import FlatParamBuffer
from ..nn.module import Parameter
from ..tensor import CompiledStep, Tensor
from .bucketer import GradBucketer, aligned_ring_chunks
from .comm import ProcessGroup, VirtualCluster
from .ddp import DistributedDataParallel, flatten_grads, scatter_batch
from .fsdp import FSDPEngine, shard_array, unshard_arrays
from .hybrid_op import HybridOpChain
from .orthogonal import ParallelLayout
from .pipeline import PipelineParallel
from .sequence_parallel import TilesSequenceParallel
from .tensor_parallel import TensorParallelMLP
from .ulysses import UlyssesAttention, merge_sequence, split_sequence

__all__ = [
    "ParallelStrategy",
    "CompositePlan",
    "CompositeStrategy",
    "DDPStrategy",
    "FSDPStrategy",
    "TilesStrategy",
    "TensorParallelStrategy",
    "UlyssesStrategy",
    "HybridOpStrategy",
    "PipelineStrategy",
    "tile_core_loss",
]


def tile_core_loss(out: Tensor, spec: TileSpec, factor: int,
                   targets: np.ndarray, loss_fn) -> Tensor:
    """Loss on a tile's core region (halo outputs cropped, Sec. III-B).

    Losses carrying a truthy ``tile_aware`` attribute (e.g.
    :class:`~repro.core.losses.LatitudeTileLoss`) receive the tile's
    :class:`TileSpec` as a third argument so position-dependent terms can
    slice their full-grid state to this tile's window.
    """
    top, left = (spec.y0 - spec.hy0) * factor, (spec.x0 - spec.hx0) * factor
    ch, cw = spec.core_shape
    core = out[:, :, top: top + ch * factor, left: left + cw * factor]
    # Tensor targets slice through the graph (a view getitem) so compiled
    # steps see the target as a live input instead of a frozen constant
    sel = np.s_[:, :, spec.y0 * factor: spec.y1 * factor,
                spec.x0 * factor: spec.x1 * factor]
    tile_target = targets[sel] if isinstance(targets, Tensor) else Tensor(targets[sel])
    if getattr(loss_fn, "tile_aware", False):
        return loss_fn(core, tile_target, spec)
    return loss_fn(core, tile_target)


def _flatten_params(model: Module) -> np.ndarray:
    return np.concatenate(
        [p.data.reshape(-1) for p in model.parameters()]
    ).astype(np.float32)


# --------------------------------------------------------------------- #
# the protocol
# --------------------------------------------------------------------- #
class ParallelStrategy:
    """Uniform driver interface over the simulated-cluster parallelisms.

    Trainable strategies (``trainable = True``) implement the full
    train-step split — ``forward_backward`` then ``reduce_gradients`` —
    plus ``optimizer_params`` for building per-unit optimizers on the
    shared flat buffers.  Forward-only strategies implement ``forward``
    and ``reference`` and raise on the training methods.
    """

    name: str = "?"
    trainable: bool = False

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def setup(self, model_factory, group: ProcessGroup) -> None:
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def forward(self, inputs) -> np.ndarray:
        raise NotImplementedError

    def forward_backward(self, inputs, targets) -> list[float]:
        """Per-unit forward/backward (no communication); per-unit losses."""
        raise NotImplementedError(f"{self.name} is a forward-only strategy")

    def reduce_gradients(self) -> None:
        """All gradient collectives of one step."""
        raise NotImplementedError(f"{self.name} is a forward-only strategy")

    def step(self, inputs, targets) -> list[float]:
        """One gradient step: compute then communicate; per-unit losses."""
        losses = self.forward_backward(inputs, targets)
        self.reduce_gradients()
        return losses

    def optimizer_params(self) -> list[tuple[list[Parameter], FlatParamBuffer | None]]:
        """Per-unit ``(params, flat_buffer)`` for optimizer construction."""
        raise NotImplementedError(f"{self.name} is a forward-only strategy")

    # ------------------------------------------------------------------ #
    # units (trainable strategies)
    # ------------------------------------------------------------------ #
    def units(self) -> list[Module]:
        """The executed model instances, one per compute unit."""
        raise NotImplementedError(f"{self.name} has no model units")

    def unit_grads(self, index: int = 0) -> np.ndarray:
        return flatten_grads(self.units()[index])

    def unit_params(self, index: int = 0) -> np.ndarray:
        return _flatten_params(self.units()[index])

    def apply_sgd(self, lr: float) -> None:
        """Plain SGD on every unit (oracle/test helper)."""
        for model in self.units():
            for p in model.parameters():
                if p.grad is not None:
                    p.data -= lr * p.grad

    # ------------------------------------------------------------------ #
    # single-rank reference semantics (drives the equivalence oracle)
    # ------------------------------------------------------------------ #
    def reference(self, inputs) -> np.ndarray:
        """Single-rank output for forward-only strategies."""
        raise NotImplementedError

    def reference_forward(self, model: Module, inputs) -> np.ndarray:
        """Single-model output matching this strategy's decomposition."""
        raise NotImplementedError

    def reference_step(self, model: Module, inputs, targets) -> np.ndarray:
        """Flat single-model gradient matching this strategy's loss
        decomposition: microbatch gradients averaged in float64 (the
        mirror of the collectives' reduction)."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # communication accounting
    # ------------------------------------------------------------------ #
    def level_groups(self) -> dict[str, list[ProcessGroup]]:
        """Process groups per parallelism level, e.g. ``{"ddp": [...]}."""
        return {}

    def comm_summary(self, reset: bool = False) -> dict:
        """``{"<level>_level_bytes": total, "calls": {...}}`` per level.

        ``calls`` holds per-op call counts per level; ``async_launches``
        counts the subset issued through the async API (bucketed
        overlap).  ``reset=True`` zeroes the accounting after the
        snapshot, so callers measuring per-phase traffic stop
        hand-rolling the snapshot/reset pair.
        """
        out: dict = {"calls": {}, "async_launches": {}}
        for level, groups in self.level_groups().items():
            out[f"{level}_level_bytes"] = float(
                sum(g.stats.total_bytes() for g in groups)
            )
            calls: dict[str, int] = {}
            launches: dict[str, int] = {}
            for g in groups:
                for op, n in g.stats.calls.items():
                    calls[op] = calls.get(op, 0) + n
                for op, n in g.stats.async_launches.items():
                    launches[op] = launches.get(op, 0) + n
            out["calls"][level] = calls
            out["async_launches"][level] = launches
        if reset:
            self.reset_comm()
        return out

    def reset_comm(self) -> None:
        """Zero every group's :class:`~.comm.CommStats` (epoch accounting)."""
        for groups in self.level_groups().values():
            for g in groups:
                g.stats.reset()


def _microbatch_mean_grads(model: Module, losses) -> np.ndarray:
    """Backward each microbatch loss thunk; float64-average the grads."""
    grads = []
    for compute_loss in losses:
        model.zero_grad()
        compute_loss().backward()
        grads.append(flatten_grads(model).astype(np.float64))
    return np.mean(grads, axis=0).astype(np.float32)


# --------------------------------------------------------------------- #
# trainable adapters
# --------------------------------------------------------------------- #
class DDPStrategy(ParallelStrategy):
    """Data parallelism: batch shards per rank, one grad all-reduce."""

    name = "ddp"
    trainable = True

    def __init__(self, loss_fn, overlap: bool = False,
                 bucket_bytes: int = 1 << 16, compile: bool = False):
        self.loss_fn = loss_fn
        self.overlap = overlap
        self.bucket_bytes = bucket_bytes
        self.compile = bool(compile)

    def setup(self, model_factory, group: ProcessGroup) -> None:
        self.group = group
        replicas = [model_factory(r) for r in range(group.size)]
        self.engine = DistributedDataParallel(replicas, group, self.loss_fn,
                                              overlap=self.overlap,
                                              bucket_bytes=self.bucket_bytes,
                                              compile=self.compile)

    def forward(self, inputs) -> np.ndarray:
        shards = np.array_split(inputs, self.group.size)
        return np.concatenate(
            [rep(Tensor(xs)).data for rep, xs in zip(self.engine.replicas, shards)]
        )

    def forward_backward(self, inputs, targets) -> list[float]:
        return self.engine.forward_backward(inputs, targets)

    def reduce_gradients(self) -> None:
        self.engine.reduce_gradients()

    def step(self, inputs, targets) -> list[float]:
        # route through the engine's public one-call step so tests that
        # instrument DistributedDataParallel.step_gradients see the
        # oracle's real execution path
        return self.engine.step_gradients(inputs, targets)

    def optimizer_params(self):
        return [(list(rep.parameters()), buf)
                for rep, buf in zip(self.engine.replicas, self.engine.buffers)]

    def units(self) -> list[Module]:
        return self.engine.replicas

    def level_groups(self):
        return {"ddp": [self.group]}

    def reference_forward(self, model, inputs) -> np.ndarray:
        return model(Tensor(inputs)).data

    def reference_step(self, model, inputs, targets) -> np.ndarray:
        shards = scatter_batch(inputs, targets, self.group.size)
        return _microbatch_mean_grads(model, [
            (lambda xs=xs, ys=ys:
             self.loss_fn(model(Tensor(xs)), Tensor(ys)))
            for xs, ys in shards
        ])


class TilesStrategy(ParallelStrategy):
    """TILES sequence parallelism: one tile per rank, one all-reduce/batch."""

    name = "tiles"
    trainable = True

    def __init__(self, loss_fn, halo: int = 2, factor: int = 2):
        self.loss_fn = loss_fn
        self.halo = halo
        self.factor = factor

    def setup(self, model_factory, group: ProcessGroup) -> None:
        self.group = group
        replicas = [model_factory(r) for r in range(group.size)]
        self.engine = TilesSequenceParallel(replicas, group,
                                            halo=self.halo, factor=self.factor)

    def forward(self, inputs) -> np.ndarray:
        return self.engine.forward(inputs)

    def forward_backward(self, inputs, targets) -> list[float]:
        return self.engine.forward_backward(inputs, targets, self.loss_fn)

    def reduce_gradients(self) -> None:
        self.engine.reduce_gradients()

    def optimizer_params(self):
        return [(list(rep.parameters()), buf)
                for rep, buf in zip(self.engine.replicas, self.engine.buffers)]

    def units(self) -> list[Module]:
        return self.engine.replicas

    def level_groups(self):
        return {"tiles": [self.group]}

    def reference_forward(self, model, inputs) -> np.ndarray:
        from ..core import TiledDownscaler
        tiled = TiledDownscaler(model, n_tiles=self.group.size,
                                halo=self.halo, factor=self.factor)
        return tiled(Tensor(inputs)).data

    def reference_step(self, model, inputs, targets) -> np.ndarray:
        h, w = inputs.shape[-2:]
        specs = make_tiles(h, w, self.group.size, self.halo)
        xt = Tensor(inputs)
        return _microbatch_mean_grads(model, [
            (lambda spec=spec:
             tile_core_loss(model(extract_tile(xt, spec)), spec,
                            self.factor, targets, self.loss_fn))
            for spec in specs
        ])


class FSDPStrategy(ParallelStrategy):
    """Fully sharded data parallelism: shared compute, sharded state."""

    name = "fsdp"
    trainable = True

    def __init__(self, loss_fn, overlap: bool = False,
                 bucket_bytes: int = 1 << 16):
        self.loss_fn = loss_fn
        self.overlap = overlap
        self.bucket_bytes = bucket_bytes
        self._grad_shards: list[dict[str, np.ndarray]] | None = None
        self._bucket_works: list = []

    def setup(self, model_factory, group: ProcessGroup) -> None:
        self.group = group
        self.model = model_factory(0)
        self._flat = self._bucketer = None
        if self.overlap:
            # flat buffer first: the engine's shard store and gathers
            # operate on the (now view-backed) parameter tensors in place
            self._flat = FlatParamBuffer(list(self.model.parameters()))
            self._bucketer = GradBucketer(self._flat, self.bucket_bytes)
            self._param_name = {id(p): name
                                for name, p in self.model.named_parameters()}
        self.engine = FSDPEngine(self.model, group)

    def forward(self, inputs) -> np.ndarray:
        self.engine.gather_all()
        return self.model(Tensor(inputs)).data

    def forward_backward(self, inputs, targets) -> list[float]:
        self.engine.gather_all()
        if not self.overlap:
            self.model.zero_grad()
            loss = self.loss_fn(self.model(Tensor(inputs)), Tensor(targets))
            loss.backward()
            return [float(loss.data)]
        self._flat.zero_grad()
        self._bucket_works = []
        self._bucketer.arm(self._launch_bucket)
        try:
            loss = self.loss_fn(self.model(Tensor(inputs)), Tensor(targets))
            loss.backward()
            self._bucketer.flush()
        finally:
            self._bucketer.disarm()
        self._flat.sync_grads()
        return [float(loss.data)]

    def _launch_bucket(self, bucket) -> None:
        """Async reduce-scatter of one bucket's per-parameter shard stacks.

        Packs exactly like :meth:`FSDPEngine.reduce_scatter_grads` but per
        bucket; the reduction is elementwise, so any bucket partition is
        bit-identical to the single whole-model collective.
        """
        world = self.group.size
        spans_: list[tuple[str, int, int]] = []
        stacks, offset = [], 0
        for p in bucket.params:
            g = p.grad if p.grad is not None else np.zeros_like(p.data)
            stacked = np.stack(shard_array(g, world))
            spans_.append((self._param_name[id(p)], offset,
                           offset + stacked.shape[1]))
            stacks.append(stacked)
            offset += stacked.shape[1]
        big = np.concatenate(stacks, axis=1)
        work = self.group.reduce_scatter_async([big] * world, op="mean")
        self._bucket_works.append((spans_, work))

    def reduce_gradients(self) -> None:
        if self.overlap:
            grad_shards: list[dict[str, np.ndarray]] = [
                dict() for _ in range(self.group.size)]
            with span("reduce/overlap_wait", cat="reduce"):
                for spans_, work in self._bucket_works:
                    for rank, row in enumerate(work.wait()):
                        flat = row.reshape(-1)
                        for name, lo, hi in spans_:
                            grad_shards[rank][name] = flat[lo:hi].copy()
            self._bucket_works = []
            self._grad_shards = grad_shards
        else:
            self._grad_shards = self.engine.reduce_scatter_grads()
        # write the reduced gradients back into the live model: the mean
        # of identical contributions is exact, so this is numerically the
        # reduction itself, and it keeps the unit-gradient interface
        # uniform across strategies
        for name, p in self.model.named_parameters():
            shards = [self._grad_shards[r][name] for r in range(self.group.size)]
            p.grad = unshard_arrays(shards, p.data.shape)

    def optimizer_params(self):
        return [(list(self.model.parameters()), None)]

    def units(self) -> list[Module]:
        return [self.model]

    def apply_sgd(self, lr: float) -> None:
        # exercise the genuine sharded-update path: per-rank shard SGD,
        # then an all-gather re-materialises the full weights
        if self._grad_shards is None:
            raise RuntimeError("reduce_gradients must run before apply_sgd")
        self.engine.apply_sharded_update(self._grad_shards, lr)

    def level_groups(self):
        return {"fsdp": [self.group]}

    def reference_forward(self, model, inputs) -> np.ndarray:
        return model(Tensor(inputs)).data

    def reference_step(self, model, inputs, targets) -> np.ndarray:
        return _microbatch_mean_grads(model, [
            lambda: self.loss_fn(model(Tensor(inputs)), Tensor(targets))
        ])


# --------------------------------------------------------------------- #
# forward-only adapters
# --------------------------------------------------------------------- #
class TensorParallelStrategy(ParallelStrategy):
    """Megatron MLP: column-parallel fc1 -> GELU -> row-parallel fc2."""

    name = "tp"

    def __init__(self, w1, b1, w2, b2):
        self._weights = (w1, b1, w2, b2)

    def setup(self, model_factory, group: ProcessGroup) -> None:
        self.group = group
        self.mlp = TensorParallelMLP(*self._weights, group)

    def forward(self, inputs) -> np.ndarray:
        return self.mlp.forward(inputs)

    def reference(self, inputs) -> np.ndarray:
        return TensorParallelMLP.reference(inputs, *self._weights)

    def level_groups(self):
        return {"tp": [self.group]}


class UlyssesStrategy(ParallelStrategy):
    """DeepSpeed-Ulysses attention: four all-to-alls per layer."""

    name = "ulysses"

    def __init__(self, num_heads: int):
        self.num_heads = num_heads

    def setup(self, model_factory, group: ProcessGroup) -> None:
        self.group = group
        self.attn = UlyssesAttention(group, num_heads=self.num_heads)

    def forward(self, inputs) -> np.ndarray:
        q, k, v = inputs
        world = self.group.size
        shards = self.attn.forward(split_sequence(q, world),
                                   split_sequence(k, world),
                                   split_sequence(v, world))
        return merge_sequence(shards)

    def reference(self, inputs) -> np.ndarray:
        return self.attn.reference(*inputs)

    def level_groups(self):
        return {"ulysses": [self.group]}


class HybridOpStrategy(ParallelStrategy):
    """Alternating column/row sharded matrix chain (ORBIT Hybrid-OP)."""

    name = "hybrid_op"

    def __init__(self, weights: list[np.ndarray]):
        self.weights = weights

    def setup(self, model_factory, group: ProcessGroup) -> None:
        self.group = group
        self.chain = HybridOpChain(self.weights, group)

    def forward(self, inputs) -> np.ndarray:
        return self.chain.forward(inputs)

    def reference(self, inputs) -> np.ndarray:
        return self.chain.reference(inputs)

    def level_groups(self):
        return {"hybrid_op": [self.group]}


class PipelineStrategy(ParallelStrategy):
    """GPipe microbatched stage pipeline (one stage per rank)."""

    name = "pipeline"

    def __init__(self, stages: list[Module], n_microbatches: int = 4):
        self.stages = stages
        self.n_microbatches = n_microbatches

    def setup(self, model_factory, group: ProcessGroup) -> None:
        self.group = group
        self.pipe = PipelineParallel(self.stages, group)

    def forward(self, inputs) -> np.ndarray:
        return self.pipe.forward(inputs, self.n_microbatches)

    def reference(self, inputs) -> np.ndarray:
        return self.pipe.reference(inputs)

    def level_groups(self):
        return {"pipeline": [self.group]}


# --------------------------------------------------------------------- #
# the composite plan: tp x fsdp x tiles x ddp == world
# --------------------------------------------------------------------- #
@dataclass
class CompositePlan:
    """Explicit four-factor decomposition of the world.

    Rank layout: ``rank = ((d*tiles + t)*fsdp + f)*tp + p`` — tensor
    parallelism is innermost (contiguous ranks, fast in-node links),
    then FSDP (neighbour strides), then the tile index, then the sample
    index, matching Fig. 5's hierarchy from fastest to slowest link.
    """

    cluster: VirtualCluster
    tp: int = 1
    fsdp: int = 1
    tiles: int = 1
    ddp: int = 1

    def __post_init__(self):
        sizes = (self.tp, self.fsdp, self.tiles, self.ddp)
        if min(sizes) < 1:
            raise ValueError(f"all level sizes must be >= 1, got {sizes}")
        world = self.cluster.world_size
        if self.tp * self.fsdp * self.tiles * self.ddp != world:
            raise ValueError(
                f"tp x fsdp x tiles x ddp = "
                f"{self.tp}x{self.fsdp}x{self.tiles}x{self.ddp} = "
                f"{self.tp * self.fsdp * self.tiles * self.ddp} != world {world}"
            )
        if self.tp > self.cluster.topology.gpus_per_node:
            raise ValueError("tensor parallelism must fit within a node")

    # ------------------------------------------------------------------ #
    @classmethod
    def from_layout(cls, layout: ParallelLayout, tiles: int = 1) -> "CompositePlan":
        """Refine a :class:`ParallelLayout` into a four-factor plan.

        The layout's algebra (``tp x fsdp = tiles_group``, ``tiles_group
        x ddp = world``) has no independent tile factor; the plan splits
        the layout's data-parallel dimension into ``tiles x ddp`` —
        each sample's tiles land on ``tiles`` adjacent groups (Fig. 5
        places TILES groups on neighbouring nodes).
        """
        if layout.ddp_size % tiles:
            raise ValueError(
                f"layout ddp {layout.ddp_size} not divisible by tiles {tiles}"
            )
        return cls(cluster=layout.cluster, tp=layout.tp_size,
                   fsdp=layout.fsdp_size, tiles=tiles,
                   ddp=layout.ddp_size // tiles)

    @property
    def world(self) -> int:
        return self.cluster.world_size

    def rank(self, p: int, f: int, t: int, d: int) -> int:
        return ((d * self.tiles + t) * self.fsdp + f) * self.tp + p

    # ------------------------------------------------------------------ #
    # rank sets per level
    # ------------------------------------------------------------------ #
    def tp_ranks(self, d: int, t: int, f: int) -> list[int]:
        return [self.rank(p, f, t, d) for p in range(self.tp)]

    def fsdp_ranks(self, d: int, t: int, p: int) -> list[int]:
        return [self.rank(p, f, t, d) for f in range(self.fsdp)]

    def tiles_ranks(self, d: int, f: int, p: int) -> list[int]:
        return [self.rank(p, f, t, d) for t in range(self.tiles)]

    def ddp_ranks(self, t: int, f: int, p: int) -> list[int]:
        return [self.rank(p, f, t, d) for d in range(self.ddp)]

    def level_rank_sets(self) -> dict[str, list[list[int]]]:
        """Every level's rank sets (each level partitions the world)."""
        return {
            "tp": [self.tp_ranks(d, t, f)
                   for d in range(self.ddp) for t in range(self.tiles)
                   for f in range(self.fsdp)],
            "fsdp": [self.fsdp_ranks(d, t, p)
                     for d in range(self.ddp) for t in range(self.tiles)
                     for p in range(self.tp)],
            "tiles": [self.tiles_ranks(d, f, p)
                      for d in range(self.ddp) for f in range(self.fsdp)
                      for p in range(self.tp)],
            "ddp": [self.ddp_ranks(t, f, p)
                    for t in range(self.tiles) for f in range(self.fsdp)
                    for p in range(self.tp)],
        }

    def validate(self) -> None:
        """Check each level's groups partition the world exactly."""
        for level, rank_sets in self.level_rank_sets().items():
            seen: set[int] = set()
            for ranks in rank_sets:
                overlap = seen & set(ranks)
                assert not overlap, f"{level}: rank reuse {overlap}"
                seen.update(ranks)
            assert seen == set(range(self.world)), f"{level}: incomplete partition"

    # ------------------------------------------------------------------ #
    def level_sizes(self) -> dict[str, int]:
        return {"tp": self.tp, "fsdp": self.fsdp,
                "tiles": self.tiles, "ddp": self.ddp}

    def communication_hierarchy(self) -> dict[str, str]:
        """Widest link each level's traffic crosses (the Fig. 5 picture)."""
        topo = self.cluster.topology

        def widest(ranks: list[int]) -> str:
            if len(ranks) == 1:
                return "local"
            levels = {topo.link_level(a, b).name
                      for a in ranks for b in ranks if a != b}
            for lvl in ("CROSS_NODE", "SAME_NODE", "SAME_CARD"):
                if lvl in levels:
                    return lvl
            return "local"

        return {
            "tp": widest(self.tp_ranks(0, 0, 0)),
            "fsdp": widest(self.fsdp_ranks(0, 0, 0)),
            "tiles": widest(self.tiles_ranks(0, 0, 0)),
            "ddp": widest(self.ddp_ranks(0, 0, 0)),
        }

    # ------------------------------------------------------------------ #
    # elasticity: derive a successor plan for a live reshard
    # ------------------------------------------------------------------ #
    def layout(self) -> dict[str, int]:
        """Serializable layout descriptor (checkpoint metadata, diffs)."""
        return {"world": self.world, "tp": self.tp, "fsdp": self.fsdp,
                "tiles": self.tiles, "ddp": self.ddp}

    def reshard(self, tp: int | None = None, fsdp: int | None = None,
                tiles: int | None = None, ddp: int | None = None,
                cluster: VirtualCluster | None = None) -> "CompositePlan":
        """A new plan with some factors changed — the reshard target.

        Unspecified factors are carried over.  A fresh
        :class:`VirtualCluster` of the new product is created (same
        topology) unless one is passed in, so the old plan's groups and
        their byte accounting stay untouched while the live state moves
        to the new plan via :mod:`repro.distributed.elastic`.
        """
        tp = self.tp if tp is None else int(tp)
        fsdp = self.fsdp if fsdp is None else int(fsdp)
        tiles = self.tiles if tiles is None else int(tiles)
        ddp = self.ddp if ddp is None else int(ddp)
        world = tp * fsdp * tiles * ddp
        if cluster is None:
            cluster = VirtualCluster(world, topology=self.cluster.topology)
        return CompositePlan(cluster=cluster, tp=tp, fsdp=fsdp,
                             tiles=tiles, ddp=ddp)

    def shrink_to(self, new_world: int) -> "CompositePlan":
        """The recovery plan after ranks die, preserving batch semantics.

        ``ddp`` is pinned to the configured batch size and ``tiles``
        fixes the loss decomposition, so both are preserved; the
        surviving world is absorbed by shrinking FSDP (the numerically
        safe axis — reduce-scatter accumulates elementwise in float64,
        so repartitioning it cannot perturb gradients) and, when the
        quotient no longer divides by ``tp``, collapsing TP to 1.
        """
        if new_world < 1:
            raise ValueError(f"cannot shrink to world {new_world}")
        unit_ways = self.tiles * self.ddp
        if new_world % unit_ways:
            raise ValueError(
                f"world {new_world} not divisible by tiles x ddp = "
                f"{self.tiles}x{self.ddp}; batch/tile semantics cannot be "
                f"preserved")
        quotient = new_world // unit_ways
        if quotient % self.tp == 0:
            tp, fsdp = self.tp, quotient // self.tp
        else:
            tp, fsdp = 1, quotient
        return self.reshard(tp=tp, fsdp=fsdp)


# --------------------------------------------------------------------- #
# the composite strategy: the full Fig. 5 stack, end-to-end
# --------------------------------------------------------------------- #
class CompositeStrategy(ParallelStrategy):
    """TP x FSDP x TILES x DDP executed together on the virtual cluster.

    See the module docstring for the execution and reduction schedule.
    Collectives run once per tensor-parallel index so every group's
    byte accounting is real; results are identical across ``p`` (the
    inputs are), so the last result is used.
    """

    name = "composite"
    trainable = True

    def __init__(self, plan: CompositePlan, loss_fn,
                 halo: int = 2, factor: int = 2, overlap: bool = False,
                 bucket_bytes: int = 1 << 16, compile: bool = False,
                 compile_guard=None):
        self.plan = plan
        self.loss_fn = loss_fn
        self.halo = halo
        self.factor = factor
        self.overlap = overlap
        self.bucket_bytes = bucket_bytes
        self.compile = bool(compile)
        self._compile_guard = compile_guard
        self._compiled: dict[tuple[int, int], CompiledStep] = {}
        self._active_loss_fn = loss_fn
        self.steps = 0
        self._model_factory = None
        # bumped by every reshard; part of the compiled-step guard key so
        # stale captured plans recapture transparently on the next call
        self._plan_epoch = 0

    # ------------------------------------------------------------------ #
    def setup(self, model_factory, group: ProcessGroup | None = None) -> None:
        self._model_factory = model_factory
        self._release_compiled()
        plan = self.plan
        cluster = plan.cluster
        n_units = plan.ddp * plan.tiles
        self._units: list[Module] = [model_factory(u) for u in range(n_units)]
        state = self._units[0].state_dict()
        for unit in self._units[1:]:
            unit.load_state_dict(state)
        self._buffers = [FlatParamBuffer(list(u.parameters()))
                         for u in self._units]
        self._bucketers = ([GradBucketer(buf, self.bucket_bytes)
                            for buf in self._buffers]
                           if self.overlap else [])
        self._ph1_works: list = []
        self._ph2_works: dict = {}
        self._fired: dict = {}
        self._work_grads: dict = {}
        # one ProcessGroup object per rank set, built once so CommStats
        # accumulate across steps
        self._tp_groups = {
            (d, t, f): cluster.group(plan.tp_ranks(d, t, f))
            for d in range(plan.ddp) for t in range(plan.tiles)
            for f in range(plan.fsdp)
        }
        self._fsdp_groups = {
            (d, t, p): cluster.group(plan.fsdp_ranks(d, t, p))
            for d in range(plan.ddp) for t in range(plan.tiles)
            for p in range(plan.tp)
        }
        self._tiles_groups = {
            (d, f, p): cluster.group(plan.tiles_ranks(d, f, p))
            for d in range(plan.ddp) for f in range(plan.fsdp)
            for p in range(plan.tp)
        }
        self._ddp_groups = {
            (t, f, p): cluster.group(plan.ddp_ranks(t, f, p))
            for t in range(plan.tiles) for f in range(plan.fsdp)
            for p in range(plan.tp)
        }

    def _unit(self, d: int, t: int) -> Module:
        return self._units[d * self.plan.tiles + t]

    def _buffer(self, d: int, t: int) -> FlatParamBuffer:
        return self._buffers[d * self.plan.tiles + t]

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def forward(self, inputs: np.ndarray) -> np.ndarray:
        """Inference: each sample's tiles on its units, stitched."""
        plan = self.plan
        if inputs.shape[0] != plan.ddp:
            raise ValueError(
                f"batch {inputs.shape[0]} != data-parallel ways {plan.ddp}")
        h, w = inputs.shape[-2:]
        outs = []
        for d in range(plan.ddp):
            x = Tensor(inputs[d: d + 1])
            if plan.tiles == 1:
                outs.append(self._unit(d, 0)(x).data)
                continue
            specs = make_tiles(h, w, plan.tiles, self.halo)
            tile_outs = [self._unit(d, t)(extract_tile(x, spec))
                         for t, spec in enumerate(specs)]
            outs.append(stitch_tiles(tile_outs, specs, self.factor).data)
        return np.concatenate(outs)

    def forward_backward(self, inputs: np.ndarray, targets: np.ndarray,
                         loss_fn=None) -> list[float]:
        loss_fn = loss_fn or self.loss_fn
        self._active_loss_fn = loss_fn
        plan = self.plan
        if inputs.shape[0] != plan.ddp:
            raise ValueError(
                f"batch {inputs.shape[0]} != data-parallel ways {plan.ddp}")
        h, w = inputs.shape[-2:]
        specs = make_tiles(h, w, plan.tiles, self.halo) if plan.tiles > 1 else None
        if self.overlap:
            self._begin_overlap_step()
        losses = []
        for d in range(plan.ddp):
            x = Tensor(inputs[d: d + 1])
            for t in range(plan.tiles):
                unit, buf = self._unit(d, t), self._buffer(d, t)
                buf.zero_grad()
                bucketer = None
                if self.overlap:
                    bucketer = self._bucketers[d * plan.tiles + t]
                    bucketer.arm(lambda bucket, d=d, t=t:
                                 self._on_bucket_ready(d, t, bucket))
                try:
                    if self.compile:
                        loss_data, out_data = self._compiled_step(d, t)(
                            inputs[d: d + 1], targets[d: d + 1])
                        loss_val, out_nbytes = float(loss_data), out_data.nbytes
                    else:
                        if specs is None:
                            out = unit(x)
                            loss = loss_fn(out, Tensor(targets[d: d + 1]))
                        else:
                            spec = specs[t]
                            out = unit(extract_tile(x, spec))
                            loss = tile_core_loss(out, spec, self.factor,
                                                  targets[d: d + 1], loss_fn)
                        loss.backward()
                        loss_val, out_nbytes = float(loss.data), out.data.nbytes
                    if bucketer is not None:
                        bucketer.flush()
                finally:
                    if bucketer is not None:
                        bucketer.disarm()
                buf.sync_grads()
                self._record_tp_traffic(unit, out_nbytes, d, t)
                losses.append(loss_val)
        return losses

    # ------------------------------------------------------------------ #
    # compiled per-(d, t) steps
    # ------------------------------------------------------------------ #
    def _compiled_step(self, d: int, t: int) -> CompiledStep:
        step = self._compiled.get((d, t))
        if step is None:
            step = CompiledStep(self._make_tile_fn(d, t),
                                guard_extra=self._guard_key)
            self._compiled[(d, t)] = step
        return step

    def _guard_key(self):
        extra = self._compile_guard() if self._compile_guard is not None else None
        return (id(self._active_loss_fn),
                bool(getattr(self._units[0], "training", True)),
                self._plan_epoch, extra)

    def _release_compiled(self) -> None:
        """Free every captured plan (arena bytes drop to zero for them)."""
        for step in self._compiled.values():
            step.invalidate()
        self._compiled.clear()

    def _make_tile_fn(self, d: int, t: int):
        """Step function for one unit's tile: loss first (backward root),
        then the tile output (its nbytes feed the TP traffic model)."""

        def fn(xt: Tensor, yt: Tensor):
            loss_fn = self._active_loss_fn
            if self.plan.tiles == 1:
                out = self._unit(d, t)(xt)
                loss = loss_fn(out, yt)
            else:
                h, w = xt.shape[-2:]
                spec = make_tiles(h, w, self.plan.tiles, self.halo)[t]
                out = self._unit(d, t)(extract_tile(xt, spec))
                loss = tile_core_loss(out, spec, self.factor, yt, loss_fn)
            return loss, out

        return fn

    # ------------------------------------------------------------------ #
    # backward-driven overlapped reduction (phases 1-2 under backward)
    # ------------------------------------------------------------------ #
    def _begin_overlap_step(self) -> None:
        plan = self.plan
        F = plan.fsdp
        lpad = self._buffers[0].padded_size(F)
        self._shard_len = lpad // F
        self._work_grads = {
            (d, t): np.zeros(lpad, dtype=np.float32)
            for d in range(plan.ddp) for t in range(plan.tiles)
        }
        self._ph1_works = []
        self._ph2_works = {}
        self._fired = {}

    def _on_bucket_ready(self, d: int, t: int, bucket) -> None:
        """Phase 1 of one bucket, launched from unit (d, t)'s tape walk.

        Every FSDP rank contributes the identical unit gradient, and the
        float64 mean of identical float32 values is exact, so the
        reduce-scatter's output *is* its input — the collective runs for
        real traffic and comm-stream time, while the values ride in the
        unit's working padded-gradient vector.  The tail bucket (index 0)
        also owns the zero padding up to ``padded_size(F)``.
        """
        plan = self.plan
        P, F, T = plan.tp, plan.fsdp, plan.tiles
        buf = self._buffer(d, t)
        wg = self._work_grads[(d, t)]
        lo = bucket.lo
        hi = wg.size if bucket.hi == buf.size else bucket.hi
        wg[lo:bucket.hi] = buf.grad[lo:bucket.hi]
        seg = wg[lo:hi]
        m = -(-seg.size // F) * F
        seg_p = np.zeros(m, dtype=np.float32)
        seg_p[:seg.size] = seg
        contributions = [seg_p.reshape(F, -1)] * F
        for p in range(P):
            w1 = self._fsdp_groups[(d, t, p)].reduce_scatter_async(
                contributions, op="mean")
        self._ph1_works.append(w1)
        # phase 2 is reducible once every tile of sample d finished this
        # bucket; the tracer's per-rank comm frontier carries the
        # phase-1 -> phase-2 dependency (each TILES member rank sits in
        # one of the bucket's FSDP groups)
        key = (d, bucket.index)
        self._fired[key] = self._fired.get(key, 0) + 1
        if self._fired[key] == T:
            self._launch_tiles(d, lo, hi, bucket.index)

    def _launch_tiles(self, d: int, lo: int, hi: int, b_idx: int) -> None:
        """Phase 2 of one bucket: TILES all-reduce of the shard sub-ranges.

        The bucket's padded range intersects each FSDP shard ``f`` in a
        sub-range; reducing that slice with the globally aligned ring
        chunk partition is bit-identical to the eager whole-shard call.
        """
        plan = self.plan
        P, F, T = plan.tp, plan.fsdp, plan.tiles
        ln = self._shard_len
        entries = []
        for f in range(F):
            s, e = max(lo, f * ln), min(hi, (f + 1) * ln)
            if e <= s:
                continue
            bufs = [self._work_grads[(d, t)][s:e] for t in range(T)]
            chunks = aligned_ring_chunks(s - f * ln, e - f * ln, ln, T)
            for p in range(P):
                work = self._tiles_groups[(d, f, p)].all_reduce_async(
                    bufs, op="mean", chunks=chunks)
            entries.append((f, s, e, work))
        self._ph2_works[(d, b_idx)] = entries

    def _record_tp_traffic(self, unit: Module, act_nbytes: int,
                           d: int, t: int) -> None:
        """Model the Megatron per-layer all-reduce bill on the TP groups.

        TP compute is shared within a unit (no sharded numerics to run),
        so the traffic is *modelled*, not executed: 2 all-reduces per
        layer forward + 2 backward, ring volume 2(P-1)/P of the layer
        activation, recorded under ``modeled_all_reduce``.
        """
        P = self.plan.tp
        if P == 1:
            return
        depth = getattr(getattr(unit, "config", None), "depth", 1)
        volume = 4 * depth * 2 * (P - 1) / P * act_nbytes
        tracer = active_tracer()
        for f in range(self.plan.fsdp):
            group = self._tp_groups[(d, t, f)]
            group.stats.record("modeled_all_reduce", volume)
            if tracer is not None:
                # the bill is 4*depth per-layer all-reduces of one
                # activation each; coalesce into one span per group,
                # priced by the same ring formula the planner uses
                tracer.collective(
                    "all_reduce", group.ranks, act_nbytes,
                    group.collective_time("all_reduce", act_nbytes),
                    calls=4 * depth)

    # ------------------------------------------------------------------ #
    # the four-phase reduction
    # ------------------------------------------------------------------ #
    def reduce_gradients(self) -> None:
        plan = self.plan
        P, F, T, D = plan.tp, plan.fsdp, plan.tiles, plan.ddp
        shards: dict[tuple[int, int], list[np.ndarray]] = {}
        if self.overlap:
            # phases 1-2 already launched bucket-by-bucket during
            # backward; drain the works and assemble the per-unit shard
            # vectors from the bucket results (each shard element is
            # covered by exactly one bucket)
            ln = self._shard_len
            with span("reduce/overlap_wait", cat="reduce"):
                for w in self._ph1_works:
                    w.wait()
                for d in range(D):
                    for t in range(T):
                        wg = self._work_grads[(d, t)]
                        shards[(d, t)] = [wg[f * ln:(f + 1) * ln].copy()
                                          for f in range(F)]
                for (d, _b), entries in sorted(self._ph2_works.items()):
                    for f, s, e, work in entries:
                        results = work.wait()
                        for t in range(T):
                            shards[(d, t)][f][s - f * ln:e - f * ln] = results[t]
            self._ph1_works, self._ph2_works, self._fired = [], {}, {}
            self._work_grads = {}
        else:
            # phase 1 — FSDP reduce-scatter: every rank of a unit
            # contributes the (identical) unit gradient and keeps its own
            # shard.  The float64 accumulation of identical contributions
            # is exact.
            with span("reduce/fsdp_reduce_scatter", cat="reduce"):
                for d in range(D):
                    for t in range(T):
                        padded = self._buffer(d, t).padded_grad(F).reshape(F, -1)
                        contributions = [padded] * F
                        for p in range(P):
                            result = self._fsdp_groups[(d, t, p)].reduce_scatter(
                                contributions, op="mean")
                        shards[(d, t)] = [r.reshape(-1) for r in result]
            # phase 2 — TILES all-reduce: average each shard across the
            # tiles of one sample (the once-per-batch collective of
            # Sec. III-B)
            with span("reduce/tiles_all_reduce", cat="reduce"):
                for d in range(D):
                    for f in range(F):
                        bufs = [shards[(d, t)][f] for t in range(T)]
                        for p in range(P):
                            result = self._tiles_groups[(d, f, p)].all_reduce(
                                bufs, op="mean")
                        for t in range(T):
                            shards[(d, t)][f] = result[t]
        # phase 3 — DDP all-reduce: average across samples
        with span("reduce/ddp_all_reduce", cat="reduce"):
            for t in range(T):
                for f in range(F):
                    bufs = [shards[(d, t)][f] for d in range(D)]
                    for p in range(P):
                        result = self._ddp_groups[(t, f, p)].all_reduce(
                            bufs, op="mean")
                    for d in range(D):
                        shards[(d, t)][f] = result[d]
        # phase 4 — FSDP all-gather: re-materialise the averaged flat
        # gradient straight into each unit's buffer (zero per-param copies)
        with span("reduce/fsdp_all_gather", cat="reduce"):
            for d in range(D):
                for t in range(T):
                    for p in range(P):
                        result = self._fsdp_groups[(d, t, p)].all_gather(
                            shards[(d, t)])
                    self._buffer(d, t).load_grad(result[0])
        self.steps += 1

    # ------------------------------------------------------------------ #
    def optimizer_params(self):
        return [(list(u.parameters()), buf)
                for u, buf in zip(self._units, self._buffers)]

    def units(self) -> list[Module]:
        return self._units

    def buffers(self) -> list[FlatParamBuffer]:
        return self._buffers

    def assert_units_synchronized(self, atol: float = 0.0) -> None:
        ref = self._units[0].state_dict()
        for i, unit in enumerate(self._units[1:], start=1):
            for name, arr in unit.state_dict().items():
                if not np.allclose(arr, ref[name], atol=atol):
                    raise AssertionError(f"unit {i} drifted on {name}")

    # ------------------------------------------------------------------ #
    # elasticity: live reshard onto a new plan
    # ------------------------------------------------------------------ #
    def export_state(self) -> np.ndarray:
        """The canonical flat parameter vector (all units agree on it)."""
        return self._buffers[0].export_data()

    def import_state(self, canonical: np.ndarray) -> None:
        """Overwrite every unit's flat buffer with the canonical vector."""
        for buf in self._buffers:
            buf.load_data(canonical)

    def reshard(self, new_plan: CompositePlan) -> None:
        """Move the live run onto ``new_plan``, bitwise.

        Export the canonical parameter vector, validate the new plan,
        rebuild units/buffers/process groups/bucketers at the new world
        via :meth:`setup`, and re-import the state.  Every captured
        :class:`CompiledStep` is released and the plan epoch bumped, so
        a surviving ``CompiledStep`` handle held elsewhere also sees a
        guard-key mismatch and recaptures transparently.  After this
        returns, the strategy is bitwise-identical to one constructed
        fresh on ``new_plan`` and fed the same canonical state.
        """
        if self._model_factory is None:
            raise RuntimeError("reshard before setup: no model factory")
        with span("replan/reshard", cat="replan",
                  old=str(self.plan.level_sizes()),
                  new=str(new_plan.level_sizes())):
            with span("replan/validate", cat="replan"):
                new_plan.validate()
            with span("replan/export", cat="replan"):
                canonical = self.export_state()
            self._plan_epoch += 1
            self.plan = new_plan
            with span("replan/rebuild", cat="replan"):
                self.setup(self._model_factory)
            with span("replan/import", cat="replan"):
                self.import_state(canonical)

    # ------------------------------------------------------------------ #
    def level_groups(self):
        return {
            "tp": list(self._tp_groups.values()),
            "fsdp": list(self._fsdp_groups.values()),
            "tiles": list(self._tiles_groups.values()),
            "ddp": list(self._ddp_groups.values()),
        }

    def comm_summary(self, reset: bool = False) -> dict:
        out = super().comm_summary()
        out["steps"] = self.steps
        out["per_step"] = {
            level: (out[f"{level}_level_bytes"] / self.steps
                    if self.steps else 0.0)
            for level in ("tp", "fsdp", "tiles", "ddp")
        }
        if reset:
            self.reset_comm()
        return out

    def reset_comm(self) -> None:
        super().reset_comm()
        self.steps = 0

    # ------------------------------------------------------------------ #
    # single-rank reference semantics
    # ------------------------------------------------------------------ #
    def reference_forward(self, model, inputs) -> np.ndarray:
        from ..core import TiledDownscaler
        plan = self.plan
        outs = []
        for d in range(plan.ddp):
            x = Tensor(inputs[d: d + 1])
            if plan.tiles == 1:
                outs.append(model(x).data)
            else:
                tiled = TiledDownscaler(model, n_tiles=plan.tiles,
                                        halo=self.halo, factor=self.factor)
                outs.append(tiled(x).data)
        return np.concatenate(outs)

    def reference_step(self, model, inputs, targets) -> np.ndarray:
        plan = self.plan
        h, w = inputs.shape[-2:]
        specs = make_tiles(h, w, plan.tiles, self.halo) if plan.tiles > 1 else None
        thunks = []
        for d in range(plan.ddp):
            xt = Tensor(inputs[d: d + 1])
            if specs is None:
                thunks.append(
                    lambda xt=xt, d=d:
                    self.loss_fn(model(xt), Tensor(targets[d: d + 1])))
            else:
                for spec in specs:
                    thunks.append(
                        lambda xt=xt, d=d, spec=spec:
                        tile_core_loss(model(extract_tile(xt, spec)), spec,
                                       self.factor, targets[d: d + 1],
                                       self.loss_fn))
        return _microbatch_mean_grads(model, thunks)
