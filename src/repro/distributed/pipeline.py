"""Pipeline parallelism (GPipe-style), one of the model-scaling
parallelisms the paper surveys (Sec. II).

The model is partitioned into consecutive stages, one per rank; a batch
is split into microbatches that stream through the stages.  Utilization
is bounded by the pipeline *bubble*: with P stages and M microbatches the
forward timeline has M + P - 1 slots of which P - 1 per stage are idle,
giving bubble fraction (P-1)/(M+P-1).

The executor runs real stage modules over real microbatches and is
verified against unpartitioned execution; the timeline simulator
reproduces the schedule algebra the bubble analysis rests on.  ORBIT-2
itself prefers FSDP/tensor/Hybrid-OP over pipelining (the bubble and the
per-microbatch activation traffic are the reasons), which
``pipeline_vs_fsdp_tradeoff`` quantifies.
"""

from __future__ import annotations

import numpy as np

from ..nn import Module
from ..tensor import Tensor
from .comm import ProcessGroup

__all__ = [
    "PipelineParallel",
    "pipeline_bubble_fraction",
    "gpipe_timeline",
    "pipeline_activation_traffic",
]


def pipeline_bubble_fraction(n_stages: int, n_microbatches: int) -> float:
    """Idle fraction of the GPipe forward+backward schedule."""
    if n_stages < 1 or n_microbatches < 1:
        raise ValueError("positive stage/microbatch counts required")
    return (n_stages - 1) / (n_microbatches + n_stages - 1)


def gpipe_timeline(n_stages: int, n_microbatches: int) -> list[list[int | None]]:
    """The forward schedule grid: ``timeline[t][stage]`` = microbatch id.

    Slot t on stage s runs microbatch t - s (when in range); the grid has
    ``M + P - 1`` time slots — the schedule-length identity the bubble
    fraction follows from.
    """
    length = n_microbatches + n_stages - 1
    grid: list[list[int | None]] = []
    for t in range(length):
        row: list[int | None] = []
        for s in range(n_stages):
            m = t - s
            row.append(m if 0 <= m < n_microbatches else None)
        grid.append(row)
    return grid


def pipeline_activation_traffic(microbatch_elems: int, n_stages: int,
                                n_microbatches: int, bytes_per_elem: int = 2) -> float:
    """Bytes crossing stage boundaries per step (forward + backward)."""
    boundaries = n_stages - 1
    return 2.0 * boundaries * n_microbatches * microbatch_elems * bytes_per_elem


class PipelineParallel:
    """Execute a chain of stage modules with GPipe microbatching.

    Parameters
    ----------
    stages:
        One module per rank; stage ``i`` feeds stage ``i+1``.
    group:
        Process group supplying the stage ranks (size must equal the
        stage count); inter-stage sends are logged on its stats.
    """

    def __init__(self, stages: list[Module], group: ProcessGroup):
        if len(stages) != group.size:
            raise ValueError(f"{len(stages)} stages for group of {group.size}")
        self.stages = list(stages)
        self.group = group
        self.last_schedule: list[tuple[int, int, int]] = []  # (slot, stage, microbatch)

    def forward(self, x: np.ndarray, n_microbatches: int) -> np.ndarray:
        """Microbatched forward; returns the concatenated outputs.

        Executes in true schedule order (slot by slot), so
        ``last_schedule`` records the real GPipe interleaving; stage
        handoffs are logged as point-to-point traffic.
        """
        if x.shape[0] % n_microbatches:
            raise ValueError(
                f"batch {x.shape[0]} not divisible into {n_microbatches} microbatches"
            )
        micro = np.split(x, n_microbatches, axis=0)
        n_stages = len(self.stages)
        # buffers[s][m] = activation of microbatch m entering stage s
        inflight: dict[tuple[int, int], Tensor] = {
            (0, m): Tensor(mb) for m, mb in enumerate(micro)
        }
        outputs: dict[int, Tensor] = {}
        self.last_schedule = []
        for t in range(n_microbatches + n_stages - 1):
            for s in range(n_stages):
                m = t - s
                if not 0 <= m < n_microbatches:
                    continue
                self.last_schedule.append((t, s, m))
                act = inflight.pop((s, m))
                out = self.stages[s](act)
                if s + 1 < n_stages:
                    inflight[(s + 1, m)] = out
                    self.group.stats.record("send", out.data.nbytes)
                else:
                    outputs[m] = out
        return np.concatenate([outputs[m].data for m in range(n_microbatches)], axis=0)

    def reference(self, x: np.ndarray) -> np.ndarray:
        """Unpartitioned execution for verification."""
        out = Tensor(x)
        for stage in self.stages:
            out = stage(out)
        return out.data

    def schedule_length(self, n_microbatches: int) -> int:
        return n_microbatches + len(self.stages) - 1


def pipeline_vs_fsdp_tradeoff(params: int, activation_elems: int,
                              n_ranks: int, n_microbatches: int) -> dict[str, float]:
    """Per-step communication of pipelining vs FSDP at equal rank count.

    Pipeline: microbatched activations across every stage boundary plus
    the bubble. FSDP: 2 all-gathers + 1 reduce-scatter of the parameters
    (≈ 3·(P-1)/P·params·2 bytes), no bubble.  Returns both bills so
    callers (and the ablation bench) can see where each wins.
    """
    pipe_bytes = pipeline_activation_traffic(activation_elems, n_ranks, n_microbatches)
    fsdp_bytes = 3.0 * (n_ranks - 1) / n_ranks * params * 2
    return {
        "pipeline_bytes": pipe_bytes,
        "pipeline_bubble": pipeline_bubble_fraction(n_ranks, n_microbatches),
        "fsdp_bytes": fsdp_bytes,
        "fsdp_bubble": 0.0,
    }
