"""Simulated communicator: real collective algorithms on virtual ranks.

Each collective operates on a list of per-rank NumPy buffers and runs the
*actual distributed algorithm* (ring all-reduce = reduce-scatter +
all-gather over chunks; tree broadcast; pairwise all-to-all), not just a
mathematical shortcut — so chunking, ordering, and floating-point
reduction order match a real ring implementation.  Every call also logs
the bytes each rank sends, which the cost model converts into time on a
given topology.

This follows the mpi4py buffer-communication idiom from the guides:
collectives take/return explicit ndarray buffers, never pickled objects.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..obs.tracer import active_tracer
from .topology import FrontierTopology

__all__ = ["CommStats", "ProcessGroup", "VirtualCluster", "Work"]


@dataclass
class CommStats:
    """Per-group communication accounting."""

    calls: dict[str, int] = field(default_factory=dict)
    bytes_per_rank: dict[str, float] = field(default_factory=dict)
    async_launches: dict[str, int] = field(default_factory=dict)

    def record(self, op: str, sent_bytes_per_rank: float) -> None:
        self.calls[op] = self.calls.get(op, 0) + 1
        self.bytes_per_rank[op] = self.bytes_per_rank.get(op, 0.0) + sent_bytes_per_rank

    def record_async(self, op: str) -> None:
        self.async_launches[op] = self.async_launches.get(op, 0) + 1

    def total_bytes(self) -> float:
        return sum(self.bytes_per_rank.values())

    def reset(self) -> None:
        self.calls.clear()
        self.bytes_per_rank.clear()
        self.async_launches.clear()


class Work:
    """Handle for an asynchronously launched collective.

    The simulated collective's *values* are computed eagerly at launch
    (sharing the exact ring arithmetic with the synchronous path, so the
    results are bit-identical), but its *time* is scheduled on the
    member ranks' comm streams.  ``wait()`` returns the result buffers
    and charges each member's compute clock only for the **exposed**
    residual — the part of the collective that had not yet finished when
    the rank stopped to wait.  ``wait()`` is idempotent.
    """

    def __init__(self, op: str, results, ranks: list[int], handle=None):
        self.op = op
        self.ranks = list(ranks)
        self._results = results
        self._handle = handle  # tracer token from collective_async, or None
        self._done = False

    @property
    def completed(self) -> bool:
        return self._done

    def wait(self):
        """Complete the collective and return its result buffers."""
        if not self._done:
            self._done = True
            if self._handle is not None:
                tracer = active_tracer()
                if tracer is not None:
                    tracer.complete_async(self._handle)
        return self._results


def _check_buffers(buffers: list[np.ndarray]) -> None:
    if not buffers:
        raise ValueError("no rank buffers")
    shape, dtype = buffers[0].shape, buffers[0].dtype
    for i, b in enumerate(buffers):
        if b.shape != shape or b.dtype != dtype:
            raise ValueError(f"rank {i} buffer {b.shape}/{b.dtype} != rank 0 {shape}/{dtype}")


class ProcessGroup:
    """A subset of cluster ranks participating in collectives together."""

    def __init__(self, ranks: list[int], topology: FrontierTopology | None = None):
        if len(set(ranks)) != len(ranks) or not ranks:
            raise ValueError(f"invalid rank list {ranks}")
        self.ranks = list(ranks)
        self.topology = topology or FrontierTopology()
        self.stats = CommStats()

    @property
    def size(self) -> int:
        return len(self.ranks)

    def _trace(self, op: str, payload_nbytes: float, sent: float) -> None:
        """Emit a per-rank span for one collective when a tracer is active.

        ``payload_nbytes`` is the per-rank buffer size — the quantity
        ``collective_time`` and ``perf_model.plan_comm_costs`` both price,
        so traced bytes/durations match the planner exactly.  Size-1
        groups are skipped: nothing moves, and trivial plans would
        otherwise drown the timeline in zero-duration spans.
        """
        if self.size == 1:
            return
        tracer = active_tracer()
        if tracer is None:
            return
        tracer.collective(op, self.ranks, payload_nbytes,
                          self.collective_time(op, payload_nbytes),
                          sent_bytes=sent)

    # ------------------------------------------------------------------ #
    # collectives — each takes one buffer per group member, in group order
    # ------------------------------------------------------------------ #
    def _all_reduce_values(self, buffers: list[np.ndarray], op: str,
                           chunks=None) -> list[np.ndarray]:
        """Shared ring all-reduce arithmetic (sync and async paths).

        ``chunks`` optionally overrides the ring's chunk partition with an
        explicit list of P index arrays (empty arrays allowed).  A chunk
        assignment determines where each element's cyclic summation
        starts, hence its float32 rounding — bucketed reductions pass the
        *globally aligned* partition so a bucket-sized all-reduce is
        bit-identical to the corresponding slice of a whole-buffer
        all-reduce.  The chunks must jointly cover every element.
        """
        _check_buffers(buffers)
        if len(buffers) != self.size:
            raise ValueError(f"expected {self.size} buffers, got {len(buffers)}")
        if op not in ("mean", "sum"):
            raise ValueError(f"unsupported op {op!r}")
        p = self.size
        if p == 1:
            return [buffers[0].copy()]
        flat = [b.reshape(-1).astype(np.float32).copy() for b in buffers]
        n = flat[0].size
        if chunks is None:
            chunks = np.array_split(np.arange(n), p)
        elif len(chunks) != p:
            raise ValueError(f"expected {p} chunk index arrays, got {len(chunks)}")
        # reduce-scatter phase: after p-1 steps rank r owns the full
        # reduction of chunk (r+1) mod p
        for step in range(p - 1):
            for r in range(p):
                src = r
                dst = (r + 1) % p
                chunk_id = (r - step) % p
                idx = chunks[chunk_id]
                flat[dst][idx] += flat[src][idx]
        # after reduce-scatter, the full reduction of chunk k lives on
        # rank (k - 1) mod p; all-gather circulates the reduced chunks
        for chunk_id in range(p):
            owner = (chunk_id - 1) % p
            idx = chunks[chunk_id]
            reduced = flat[owner][idx]
            for r in range(p):
                flat[r][idx] = reduced
        if op == "mean":
            for f in flat:
                f /= p
        return [f.reshape(buffers[0].shape) for f in flat]

    def all_reduce(self, buffers: list[np.ndarray], op: str = "mean",
                   chunks=None) -> list[np.ndarray]:
        """Ring all-reduce: reduce-scatter then all-gather over P chunks.

        Each rank sends 2·(P−1)/P of its buffer — the canonical
        bandwidth-optimal volume.  Reduction order follows the ring, so
        float32 rounding matches a real NCCL/RCCL ring.
        """
        results = self._all_reduce_values(buffers, op, chunks)
        if self.size == 1:
            self.stats.record("all_reduce", 0.0)
            return results
        sent = 2 * (self.size - 1) / self.size * buffers[0].nbytes
        self.stats.record("all_reduce", sent)
        self._trace("all_reduce", buffers[0].nbytes, sent)
        return results

    def _all_gather_values(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        _check_buffers(buffers)
        if len(buffers) != self.size:
            raise ValueError(f"expected {self.size} buffers, got {len(buffers)}")
        full = np.concatenate(buffers, axis=0)
        return [full.copy() for _ in range(self.size)]

    def all_gather(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Ring all-gather: every rank ends with the concatenation
        (axis 0) of all ranks' buffers in group order."""
        results = self._all_gather_values(buffers)
        # ring all-gather: each rank forwards its shard (p-1) hops
        sent = (self.size - 1) * buffers[0].nbytes
        self.stats.record("all_gather", sent)
        self._trace("all_gather", buffers[0].nbytes, sent)
        return results

    def _reduce_scatter_values(self, buffers: list[np.ndarray],
                               op: str) -> list[np.ndarray]:
        """Element-wise float64 reduction then 1/P split.

        Unlike the ring all-reduce, the reduction here is element-wise
        over *all* ranks at once, so any partition of the parameter space
        into buckets reduces bit-identically to one whole-buffer call.
        """
        _check_buffers(buffers)
        if len(buffers) != self.size:
            raise ValueError(f"expected {self.size} buffers, got {len(buffers)}")
        if buffers[0].shape[0] % self.size:
            raise ValueError(
                f"leading dim {buffers[0].shape[0]} not divisible by group size {self.size}"
            )
        total = np.sum([b.astype(np.float64) for b in buffers], axis=0)
        if op == "mean":
            total /= self.size
        elif op != "sum":
            raise ValueError(f"unsupported op {op!r}")
        shards = np.array_split(total.astype(np.float32), self.size, axis=0)
        return [s.copy() for s in shards]

    def reduce_scatter(self, buffers: list[np.ndarray], op: str = "sum") -> list[np.ndarray]:
        """Each rank ends with its 1/P slice of the element-wise reduction.

        Buffers must have leading dimension divisible by the group size.
        """
        results = self._reduce_scatter_values(buffers, op)
        sent = (self.size - 1) / self.size * buffers[0].nbytes
        self.stats.record("reduce_scatter", sent)
        self._trace("reduce_scatter", buffers[0].nbytes, sent)
        return results

    def broadcast(self, buffer: np.ndarray, root_index: int = 0) -> list[np.ndarray]:
        """Binomial-tree broadcast from the group member at ``root_index``."""
        if not 0 <= root_index < self.size:
            raise ValueError(f"root index {root_index} outside group of {self.size}")
        sent = buffer.nbytes * np.log2(max(self.size, 2)) / self.size
        self.stats.record("broadcast", sent)
        self._trace("broadcast", buffer.nbytes, sent)
        return [buffer.copy() for _ in range(self.size)]

    def all_to_all(self, buffers: list[np.ndarray]) -> list[np.ndarray]:
        """Pairwise exchange: rank i's output j-th slice = rank j's i-th slice.

        Each buffer's leading dimension must be divisible by group size.
        This is the collective sequence parallelism (Ulysses-style) needs
        every attention layer — the overhead TILES avoids.
        """
        _check_buffers(buffers)
        if len(buffers) != self.size:
            raise ValueError(f"expected {self.size} buffers, got {len(buffers)}")
        if buffers[0].shape[0] % self.size:
            raise ValueError("leading dim not divisible by group size")
        split = [np.array_split(b, self.size, axis=0) for b in buffers]
        out = [np.concatenate([split[j][i] for j in range(self.size)], axis=0)
               for i in range(self.size)]
        sent = (self.size - 1) / self.size * buffers[0].nbytes
        self.stats.record("all_to_all", sent)
        self._trace("all_to_all", buffers[0].nbytes, sent)
        return out

    # ------------------------------------------------------------------ #
    # async collectives — same math, comm-stream timing
    # ------------------------------------------------------------------ #
    def _launch_async(self, op: str, results, payload_nbytes: float,
                      sent: float) -> Work:
        """Record stats and schedule the collective on the comm stream.

        Values were already computed (eagerly, bit-identically to the
        sync path); here we only account for the *time*: the span starts
        at the latest member's current position (compute clock or comm
        frontier, whichever is later) and the member compute clocks are
        NOT advanced — ``Work.wait()`` charges only the exposed residual.
        """
        self.stats.record(op, sent)
        self.stats.record_async(op)
        handle = None
        if self.size > 1:
            tracer = active_tracer()
            if tracer is not None:
                handle = tracer.collective_async(
                    op, self.ranks, payload_nbytes,
                    self.collective_time(op, payload_nbytes),
                    sent_bytes=sent)
        return Work(op, results, self.ranks, handle)

    def all_reduce_async(self, buffers: list[np.ndarray], op: str = "mean",
                         chunks=None) -> Work:
        """Asynchronous ring all-reduce; result via ``Work.wait()``."""
        results = self._all_reduce_values(buffers, op, chunks)
        if self.size == 1:
            self.stats.record("all_reduce", 0.0)
            self.stats.record_async("all_reduce")
            return Work("all_reduce", results, self.ranks)
        sent = 2 * (self.size - 1) / self.size * buffers[0].nbytes
        return self._launch_async("all_reduce", results, buffers[0].nbytes, sent)

    def reduce_scatter_async(self, buffers: list[np.ndarray],
                             op: str = "sum") -> Work:
        """Asynchronous reduce-scatter; result via ``Work.wait()``."""
        results = self._reduce_scatter_values(buffers, op)
        sent = (self.size - 1) / self.size * buffers[0].nbytes
        return self._launch_async("reduce_scatter", results,
                                  buffers[0].nbytes, sent)

    def all_gather_async(self, buffers: list[np.ndarray]) -> Work:
        """Asynchronous ring all-gather; result via ``Work.wait()``."""
        results = self._all_gather_values(buffers)
        sent = (self.size - 1) * buffers[0].nbytes
        return self._launch_async("all_gather", results,
                                  buffers[0].nbytes, sent)

    # ------------------------------------------------------------------ #
    # cost model
    # ------------------------------------------------------------------ #
    def collective_time(self, op: str, nbytes: int) -> float:
        """Modelled wall-clock of one collective on this group's topology.

        Ring model: T = steps · latency + volume / bottleneck_bandwidth,
        with the canonical per-op volumes (all_reduce 2·(P−1)/P·n, etc.).
        """
        p = self.size
        if p == 1:
            return 0.0
        bw, lat = self.topology.group_bottleneck(self.ranks)
        if op == "all_reduce":
            steps, volume = 2 * (p - 1), 2 * (p - 1) / p * nbytes
        elif op in ("all_gather", "reduce_scatter", "all_to_all"):
            steps, volume = p - 1, (p - 1) / p * nbytes
        elif op == "broadcast":
            steps, volume = int(np.ceil(np.log2(p))), nbytes
        else:
            raise ValueError(f"unknown collective {op!r}")
        return steps * lat + volume / bw


class VirtualCluster:
    """A set of virtual ranks with hierarchical group construction.

    Ranks are integers 0..world_size-1 laid out densely over the
    topology (8 per node).  Groups are contiguous or strided rank sets,
    matching Fig. 5's mapping of parallelism levels onto the machine.
    """

    def __init__(self, world_size: int, topology: FrontierTopology | None = None):
        if world_size < 1:
            raise ValueError("world_size must be >= 1")
        self.world_size = world_size
        self.topology = topology or FrontierTopology()

    @property
    def n_nodes(self) -> int:
        return (self.world_size + self.topology.gpus_per_node - 1) // self.topology.gpus_per_node

    def world_group(self) -> ProcessGroup:
        return ProcessGroup(list(range(self.world_size)), self.topology)

    def group(self, ranks: list[int]) -> ProcessGroup:
        for r in ranks:
            if not 0 <= r < self.world_size:
                raise ValueError(f"rank {r} outside world of {self.world_size}")
        return ProcessGroup(ranks, self.topology)

    def contiguous_groups(self, group_size: int) -> list[ProcessGroup]:
        """Partition the world into contiguous groups of ``group_size``."""
        if self.world_size % group_size:
            raise ValueError(f"world {self.world_size} not divisible by {group_size}")
        return [self.group(list(range(s, s + group_size)))
                for s in range(0, self.world_size, group_size)]

    def strided_groups(self, group_size: int) -> list[ProcessGroup]:
        """Partition into groups of ranks with stride world/group_size
        (the orthogonal complement of contiguous grouping)."""
        if self.world_size % group_size:
            raise ValueError(f"world {self.world_size} not divisible by {group_size}")
        stride = self.world_size // group_size
        return [self.group(list(range(offset, self.world_size, stride)))
                for offset in range(stride)]
