"""Elastic re-planning: the pure state-remap layer.

A :class:`~repro.distributed.strategy.CompositePlan` fixes how flat
parameter and optimizer state is sliced across ranks: every rank
``(p, f, t, d)`` owns FSDP shard ``f`` of its unit's padded flat vector
(the partition :meth:`CompositeStrategy.reduce_gradients` reduce-scatters
into).  Growing or shrinking the world mid-run means moving that state
onto a *different* slicing — without perturbing a single bit of it.

This module is the remap's pure core.  The **canonical form** of one
flat state vector is simply the unpadded float32 vector in the model's
deterministic ``named_parameters()`` order — the one layout every plan
shares.  Around it:

* :func:`shard_slices` — each rank's ``(lo, hi)`` window into the padded
  canonical vector under a plan;
* :func:`shard_state` — export: canonical vector → per-rank shards;
* :func:`unshard_state` — import: per-rank shards → canonical vector,
  verifying the cross-unit replicas agree byte-for-byte;
* :func:`remap_state` — old plan's shards → new plan's shards, the
  composition the round-trip property test pins bitwise.

:class:`CanonicalState` bundles the three flat vectors a training run
carries (parameters + the two AdamW moments) with the optimizer step
count and scheduler position, and :class:`FaultPlan` scripts rank
failures at chosen step boundaries so recovery can be driven through
the same reshard path deterministically.

Everything here is NumPy on plain vectors — no collectives, no models —
so the bitwise round-trip guarantee is structural: export and import are
pure slicing, and float32 bytes are never re-derived.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from .strategy import CompositePlan

__all__ = [
    "CanonicalState",
    "FaultPlan",
    "shard_slices",
    "shard_state",
    "unshard_state",
    "remap_state",
]


def _padded(size: int, fsdp: int) -> int:
    return -(-size // fsdp) * fsdp


def shard_slices(plan: CompositePlan, size: int) -> dict[int, tuple[int, int]]:
    """Each rank's ``(lo, hi)`` window into the padded canonical vector.

    Rank ``(p, f, t, d)`` owns FSDP shard ``f`` of its unit's flat state
    — the exact partition the 4-phase reduction scatters gradients into,
    replicated across the tensor-parallel, tile, and sample axes.
    """
    if size < 1:
        raise ValueError("state size must be >= 1")
    ln = _padded(size, plan.fsdp) // plan.fsdp
    out: dict[int, tuple[int, int]] = {}
    for d in range(plan.ddp):
        for t in range(plan.tiles):
            for f in range(plan.fsdp):
                for p in range(plan.tp):
                    out[plan.rank(p, f, t, d)] = (f * ln, (f + 1) * ln)
    return out


def shard_state(plan: CompositePlan, vec: np.ndarray) -> dict[int, np.ndarray]:
    """Export a canonical flat vector to every rank's shard (copies)."""
    vec = np.ascontiguousarray(vec, dtype=np.float32).reshape(-1)
    padded = np.zeros(_padded(vec.size, plan.fsdp), dtype=np.float32)
    padded[: vec.size] = vec
    return {rank: padded[lo:hi].copy()
            for rank, (lo, hi) in shard_slices(plan, vec.size).items()}


def unshard_state(plan: CompositePlan, shards: Mapping[int, np.ndarray],
                  size: int) -> np.ndarray:
    """Import per-rank shards back into the canonical flat vector.

    The shard of each FSDP index is replicated across every unit and
    tensor-parallel rank; all replicas must agree byte-for-byte (a
    diverged replica means the plan's synchronization invariant broke,
    and silently picking one copy would hide it).
    """
    slices = shard_slices(plan, size)
    missing = set(slices) - set(shards)
    if missing:
        raise ValueError(f"missing shards for ranks {sorted(missing)}")
    ln = _padded(size, plan.fsdp) // plan.fsdp
    padded = np.zeros(_padded(size, plan.fsdp), dtype=np.float32)
    filled: dict[int, int] = {}
    for rank, (lo, hi) in slices.items():
        shard = np.asarray(shards[rank], dtype=np.float32).reshape(-1)
        if shard.size != ln:
            raise ValueError(
                f"rank {rank} shard has {shard.size} elements, expected {ln}")
        owner = filled.get(lo)
        if owner is None:
            padded[lo:hi] = shard
            filled[lo] = rank
        elif not np.array_equal(padded[lo:hi], shard):
            raise ValueError(
                f"rank {rank} shard diverged from rank {owner}'s replica")
    return padded[:size].copy()


def remap_state(old_plan: CompositePlan, new_plan: CompositePlan,
                shards: Mapping[int, np.ndarray], size: int
                ) -> dict[int, np.ndarray]:
    """Re-slice one plan's shards onto another plan — bitwise.

    ``old → canonical → new`` is pure slicing of the same float32 bytes,
    so composing with the inverse direction returns the input shards
    unchanged (the property test in ``tests/distributed/test_elastic.py``
    pins this over random layouts and odd worlds).
    """
    return shard_state(new_plan, unshard_state(old_plan, shards, size))


@dataclass
class CanonicalState:
    """Plan-independent snapshot of one training run's flat state.

    ``data`` is the flat parameter vector; ``adam_m`` / ``adam_v`` are
    the AdamW moment vectors (``None`` when no optimizer state rides
    along); ``adam_t`` the optimizer's bias-correction step count and
    ``step`` the scheduler position.  ``extra`` carries small scalars
    (e.g. the AMP loss scale).  All vectors share the canonical
    ``named_parameters()`` layout, so importing onto any valid plan is
    pure slicing.
    """

    data: np.ndarray
    adam_m: np.ndarray | None = None
    adam_v: np.ndarray | None = None
    adam_t: int = 0
    step: int = 0
    extra: dict = field(default_factory=dict)

    def __post_init__(self):
        self.data = np.ascontiguousarray(self.data, dtype=np.float32).reshape(-1)
        for name in ("adam_m", "adam_v"):
            vec = getattr(self, name)
            if vec is not None:
                vec = np.ascontiguousarray(vec, dtype=np.float32).reshape(-1)
                if vec.size != self.data.size:
                    raise ValueError(
                        f"{name} has {vec.size} elements, params have "
                        f"{self.data.size}")
                setattr(self, name, vec)

    @property
    def size(self) -> int:
        return int(self.data.size)

    @property
    def nbytes(self) -> int:
        """Total state bytes the reshard must move."""
        total = self.data.nbytes
        for vec in (self.adam_m, self.adam_v):
            if vec is not None:
                total += vec.nbytes
        return int(total)

    def vectors(self) -> dict[str, np.ndarray]:
        out = {"data": self.data}
        if self.adam_m is not None:
            out["adam_m"] = self.adam_m
        if self.adam_v is not None:
            out["adam_v"] = self.adam_v
        return out

    def copy(self) -> "CanonicalState":
        return CanonicalState(
            data=self.data.copy(),
            adam_m=None if self.adam_m is None else self.adam_m.copy(),
            adam_v=None if self.adam_v is None else self.adam_v.copy(),
            adam_t=self.adam_t, step=self.step, extra=dict(self.extra))


@dataclass(frozen=True)
class FaultPlan:
    """Scripted rank failures at chosen step boundaries.

    ``failures`` maps a step index to the ranks that die *at that step's
    boundary* — i.e. before step ``s`` executes.  The engine detects the
    failure when it reaches the boundary, shrinks the plan to the
    surviving world through :meth:`CompositePlan.shrink_to`, and
    replans through the same reshard path a voluntary resize uses, so
    recovery completes within one step boundary.
    """

    failures: Mapping[int, tuple[int, ...]]

    def __post_init__(self):
        for step, ranks in self.failures.items():
            if step < 0:
                raise ValueError(f"fault step {step} must be >= 0")
            if not ranks:
                raise ValueError(f"fault at step {step} kills no ranks")
            if len(set(ranks)) != len(ranks):
                raise ValueError(f"fault at step {step} repeats ranks")

    def dead_at(self, step: int) -> tuple[int, ...]:
        """Ranks that die at the boundary of ``step`` (empty if none)."""
        return tuple(self.failures.get(step, ()))

    @property
    def last_step(self) -> int:
        return max(self.failures, default=-1)
