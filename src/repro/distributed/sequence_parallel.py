"""TILES sequence parallelism: one tile per rank (Sec. III-B/III-C).

This is the distributed execution of ``repro.core.tiles``: each rank of a
TILES group owns one spatial tile, runs the full model on its
halo-extended tile independently (attention confined to the tile), and
the per-rank gradients are averaged with a single all-reduce per batch —
the "minimal communication frequency and overhead" property that lets
TILES groups sit on the slow inter-node links (Fig. 5).

Contrast with Ulysses-style sequence parallelism, whose all-to-all per
attention layer is also modelled here (``ulysses_comm_volume``) for the
comparison the paper draws in Sec. II.
"""

from __future__ import annotations

import numpy as np

from ..core.tiles import extract_tile, make_tiles, stitch_tiles
from ..nn import Module
from ..nn.flat import FlatParamBuffer
from ..tensor import Tensor
from .comm import ProcessGroup

__all__ = ["TilesSequenceParallel", "ulysses_comm_volume", "tiles_comm_volume"]


class TilesSequenceParallel:
    """Distribute one sample's tiles across the ranks of a group.

    Parameters
    ----------
    replicas:
        One model replica per rank (synchronized at construction).
    group:
        The TILES sequence-parallel process group.
    halo:
        Halo width in coarse pixels.
    factor:
        Downscaling refinement factor.
    """

    def __init__(self, replicas: list[Module], group: ProcessGroup, halo: int, factor: int):
        if len(replicas) != group.size:
            raise ValueError(f"{len(replicas)} replicas for group of {group.size}")
        self.replicas = replicas
        self.group = group
        self.halo = halo
        self.factor = factor
        state = replicas[0].state_dict()
        for rep in replicas[1:]:
            rep.load_state_dict(state)
        # flat grad buffers: backward accumulates in place and the one
        # all-reduce per batch sends the whole buffer — no per-step
        # flatten/unflatten allocations
        self.buffers = [FlatParamBuffer(list(rep.parameters())) for rep in replicas]

    def forward(self, x: np.ndarray) -> np.ndarray:
        """Tile-parallel inference: scatter tiles, compute, stitch."""
        b, c, h, w = x.shape
        specs = make_tiles(h, w, self.group.size, self.halo)
        xt = Tensor(x)
        outs = [rep(extract_tile(xt, spec)) for rep, spec in zip(self.replicas, specs)]
        return stitch_tiles(outs, specs, self.factor).data

    def forward_backward(self, x: np.ndarray, target: np.ndarray, loss_fn
                         ) -> list[float]:
        """Per-tile forward/backward into the flat grad buffers (no comm).

        ``loss_fn(pred, target) -> Tensor`` is applied per tile on the
        tile's core target region (halo outputs are cropped before the
        loss, as the halo regions are discarded in the real system).
        Returns the per-tile losses.
        """
        b, c, h, w = x.shape
        specs = make_tiles(h, w, self.group.size, self.halo)
        xt = Tensor(x)
        losses = []
        for rep, buf, spec in zip(self.replicas, self.buffers, specs):
            buf.zero_grad()
            out = rep(extract_tile(xt, spec))
            f = self.factor
            top, left = (spec.y0 - spec.hy0) * f, (spec.x0 - spec.hx0) * f
            ch, cw = spec.core_shape
            core = out[:, :, top : top + ch * f, left : left + cw * f]
            tile_target = Tensor(
                target[:, :, spec.y0 * f : spec.y1 * f, spec.x0 * f : spec.x1 * f]
            )
            loss = loss_fn(core, tile_target)
            loss.backward()
            buf.sync_grads()
            losses.append(float(loss.data))
        return losses

    def reduce_gradients(self) -> None:
        """Average tile gradients: the ONE all-reduce per batch of Sec. III-B."""
        reduced = self.group.all_reduce([buf.grad for buf in self.buffers],
                                        op="mean")
        for buf, flat in zip(self.buffers, reduced):
            buf.grad[...] = flat

    def step_gradients(self, x: np.ndarray, target: np.ndarray, loss_fn) -> float:
        """One training step: per-tile forward/backward + grad all-reduce.

        Returns the mean tile loss; averaged gradients are left in every
        replica — the once-per-batch communication of Sec. III-B.
        """
        losses = self.forward_backward(x, target, loss_fn)
        self.reduce_gradients()
        return float(np.mean(losses))


def tiles_comm_volume(param_bytes: int, world: int, steps: int = 1) -> float:
    """Bytes/rank for TILES: ONE gradient all-reduce per batch."""
    return steps * 2 * (world - 1) / world * param_bytes


def ulysses_comm_volume(seq_len: int, embed_dim: int, n_layers: int, world: int,
                        steps: int = 1, bytes_per_elem: int = 4) -> float:
    """Bytes/rank for Ulysses-style sequence parallelism.

    Each attention layer needs 4 all-to-alls (scatter Q/K/V heads, gather
    outputs) of the full (seq, dim) activation: volume
    4 · n_layers · (P-1)/P · seq·dim·bytes per forward, and roughly the
    same again in backward — this is the per-layer overhead that caps
    sequence parallelism at 188K tokens while TILES scales to billions.
    """
    # each rank's all-to-all buffer holds its 1/world share of the
    # (seq, dim) activation; it sends (world-1)/world of that per call
    per_layer = 4 * (world - 1) / world * seq_len * embed_dim * bytes_per_elem / world
    return steps * 2 * n_layers * per_layer  # forward + backward
