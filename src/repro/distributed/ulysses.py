"""Ulysses-style sequence parallelism — the approach TILES replaces.

DeepSpeed-Ulysses (Sec. II, "Scaling algorithm solutions") splits the
token sequence across GPUs; because self-attention needs every token to
see every other token, each attention layer performs all-to-all
exchanges: scatter Q/K/V by heads (each rank gets ALL tokens of its head
subset), compute full attention per head, then all-to-all back to the
sequence split.  It is mathematically exact — and that is the point of
implementing it: the comparison with TILES is then between an exact
method paying four all-to-alls per layer and a local approximation paying
one gradient all-reduce per batch.

The implementation runs real buffers through the virtual cluster's
all-to-all and is verified against single-device attention to float
precision.
"""

from __future__ import annotations

import numpy as np

from ..nn.flash_attention import flash_attention
from ..tensor import Tensor
from .comm import ProcessGroup

__all__ = ["UlyssesAttention", "split_sequence", "merge_sequence"]


def split_sequence(x: np.ndarray, world: int) -> list[np.ndarray]:
    """Split (L, ...) along the sequence axis into ``world`` equal shards."""
    if x.shape[0] % world:
        raise ValueError(f"sequence {x.shape[0]} not divisible by {world} ranks")
    return [s.copy() for s in np.split(x, world, axis=0)]


def merge_sequence(shards: list[np.ndarray]) -> np.ndarray:
    return np.concatenate(shards, axis=0)


class UlyssesAttention:
    """Distributed exact attention over a sequence-parallel group.

    Layout convention: each rank holds a (L/P, H, D) shard of Q, K, V
    (its slice of the sequence, all heads).  ``forward`` performs:

    1. all-to-all #1–3: re-shard Q, K, V from sequence-split to
       head-split — afterwards each rank holds (L, H/P, D);
    2. rank-local exact attention over the FULL sequence for its heads;
    3. all-to-all #4: re-shard outputs back to sequence-split.

    Four all-to-alls of the full activation per attention layer — the
    communication bill the paper contrasts with TILES.
    """

    def __init__(self, group: ProcessGroup, num_heads: int):
        if num_heads % group.size:
            raise ValueError(
                f"heads {num_heads} not divisible by group size {group.size}"
            )
        self.group = group
        self.num_heads = num_heads

    # ------------------------------------------------------------------ #
    def _seq_to_head_shards(self, shards: list[np.ndarray]) -> list[np.ndarray]:
        """(L/P, H, D) per rank → (L, H/P, D) per rank via one all-to-all."""
        p = self.group.size
        hp = self.num_heads // p
        prepared = []
        for s in shards:
            lp, h, d = s.shape
            # lay out as (P, L/P, H/P, D): slice j goes to rank j
            blocks = s.reshape(lp, p, hp, d).transpose(1, 0, 2, 3)
            prepared.append(np.ascontiguousarray(blocks.reshape(p * lp, hp, d)))
        exchanged = self.group.all_to_all(prepared)
        out = []
        for e in exchanged:
            # rank i received P blocks of (L/P, H/P, D), in sequence order
            out.append(e)
        return out

    def _head_to_seq_shards(self, shards: list[np.ndarray]) -> list[np.ndarray]:
        """(L, H/P, D) per rank → (L/P, H, D) per rank (the inverse)."""
        p = self.group.size
        hp = self.num_heads // p
        prepared = [np.ascontiguousarray(s) for s in shards]
        exchanged = self.group.all_to_all(prepared)
        out = []
        for e in exchanged:
            lp = e.shape[0] // p
            blocks = e.reshape(p, lp, hp, e.shape[-1])  # one block per source rank
            merged = blocks.transpose(1, 0, 2, 3).reshape(lp, p * hp, e.shape[-1])
            out.append(np.ascontiguousarray(merged))
        return out

    # ------------------------------------------------------------------ #
    def forward(self, q_shards: list[np.ndarray], k_shards: list[np.ndarray],
                v_shards: list[np.ndarray]) -> list[np.ndarray]:
        """Distributed attention; returns per-rank (L/P, H, D) outputs."""
        for name, shards in (("q", q_shards), ("k", k_shards), ("v", v_shards)):
            if len(shards) != self.group.size:
                raise ValueError(f"{name}: expected {self.group.size} shards")
        q_heads = self._seq_to_head_shards(q_shards)   # all-to-all 1
        k_heads = self._seq_to_head_shards(k_shards)   # all-to-all 2
        v_heads = self._seq_to_head_shards(v_shards)   # all-to-all 3
        outputs = []
        for q, k, v in zip(q_heads, k_heads, v_heads):
            # (L, H/P, D) → (1, H/P, L, D) for the attention kernel
            qt = Tensor(np.ascontiguousarray(q.transpose(1, 0, 2))[None])
            kt = Tensor(np.ascontiguousarray(k.transpose(1, 0, 2))[None])
            vt = Tensor(np.ascontiguousarray(v.transpose(1, 0, 2))[None])
            out = flash_attention(qt, kt, vt).data[0]   # (H/P, L, D)
            outputs.append(np.ascontiguousarray(out.transpose(1, 0, 2)))
        return self._head_to_seq_shards(outputs)        # all-to-all 4

    def reference(self, q: np.ndarray, k: np.ndarray, v: np.ndarray) -> np.ndarray:
        """Single-device attention over the full (L, H, D) arrays."""
        qt = Tensor(np.ascontiguousarray(q.transpose(1, 0, 2))[None])
        kt = Tensor(np.ascontiguousarray(k.transpose(1, 0, 2))[None])
        vt = Tensor(np.ascontiguousarray(v.transpose(1, 0, 2))[None])
        out = flash_attention(qt, kt, vt).data[0]
        return np.ascontiguousarray(out.transpose(1, 0, 2))

    def all_to_alls_per_layer(self) -> int:
        return 4
