"""Analytic performance model calibrated to Frontier (Tables II/III, Fig. 6).

The paper's headline numbers come from 512–32,768 GPUs we do not have;
this module predicts them from first principles plus a handful of
calibration constants, combined with Frontier's published link/compute
specs (``repro.distributed.topology``):

* **FLOPs** — standard transformer accounting: per layer,
  ``24·L·d²`` projection FLOPs + ``4·L²·d`` attention FLOPs (multiply-add
  = 2); training = 3× forward.  TILES confines attention within tiles
  (dividing the quadratic term) but adds halo tokens to every tile — the
  overhead that makes 36 tiles slower than 16 (Table II(b)).
* **Memory** — parameters + optimizer state (bf16 weights, fp32 master +
  two Adam moments = 14 bytes/param) sharded over the GPUs serving one
  tile; linear activation residency ``C_ACT·depth·L·d·2`` bytes sharded
  by tensor parallelism (≤ one node); naive attention adds the quadratic
  ``L²`` score matrices — why the baseline ViT OOMs at 777K tokens
  (Table II) while flash-attention Reslim scales to billions.
* **Rate** — a roofline on per-layer GEMM size ``x = L_tile·d²``:
  sustained fraction ``F_MAX·x/(x+W_HALF)``.  Reproduces the paper's
  small-model underutilization (9.5M at 363 PF vs 10B at 1.8 EF).
* **Schedule** — each sample is served by a group of ``tiles × tp``
  GPUs; the remaining GPUs replicate groups data-parallel.  A fixed
  per-step floor (kernel launch / loader residue), a 90 %-overlapped
  gradient all-reduce, and a logarithmic straggler term complete the
  model; the latter two produce the 92–98 % strong-scaling band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import ModelConfig, transformer_param_count
from ..core.tiles import tile_grid
from .strategy import CompositePlan
from .topology import FRONTIER, FrontierTopology

__all__ = [
    "DownscalingWorkload",
    "transformer_flops",
    "workload_flops_per_sample",
    "memory_per_gpu_bytes",
    "max_output_tokens",
    "plan_comm_costs",
    "plan_cost_diff",
    "reshard_cost",
    "REPLAN_VALIDATE_S",
    "step_traffic_schedule",
    "modeled_step_timeline",
    "overlap_report",
    "ServiceTimeModel",
    "TileServiceTimeModel",
    "DEFAULT_SERVICE_TIME",
    "SERVE_DISPATCH_S",
    "inference_time_per_sample",
    "service_time_model",
    "tile_inference_times",
    "tile_service_time_model",
    "cache_aware_service_time",
    "serve_report",
    "time_per_sample",
    "sustained_flops",
    "strong_scaling_efficiency",
    "C_ACT",
    "F_MAX",
    "W_HALF",
    "T_FLOOR",
]

# ---------------------------------------------------------------------- #
# calibration constants (single source of truth; see module docstring)
# ---------------------------------------------------------------------- #
C_ACT = 144            # resident activation tensors per layer (incl. backward)
F_MAX = 0.6            # best-case fraction of peak bf16 FLOPs for big GEMMs
D_HALF = 3.0e5         # d² at which width-bound efficiency reaches F_MAX/2
L_HALF = 1500.0        # sequence length at which batch-dim efficiency is half
W_HALF = D_HALF * L_HALF  # legacy composite constant (kept for reference)
T_FLOOR = 1.5e-4       # per-step fixed cost (launch/loader residue), seconds
QT_SECONDS_PER_TOKEN = 3.0e-6  # CPU quad-tree build + (de)compress per token
GRAD_OVERLAP = 0.9     # fraction of gradient all-reduce hidden under backward
TP_OVERLAP = 0.75      # fraction of tensor-parallel all-reduce hidden
JITTER_PER_DOUBLING = 0.012  # straggler/sync overhead per doubling beyond 512
BYTES_PER_PARAM_TRAIN = 14   # bf16 weight + fp32 master + 2 fp32 Adam moments
ACT_BYTES = 2                # bf16 activations


@dataclass(frozen=True)
class DownscalingWorkload:
    """One row of the experiment grid: model × task × scaling strategy."""

    config: ModelConfig
    coarse_shape: tuple[int, int]        # input grid (h, w)
    factor: int = 4
    out_channels: int = 18
    architecture: str = "reslim"         # 'reslim' | 'vit'
    tiles: int = 1
    compression: float = 1.0             # adaptive-compression sequence divisor
    halo_tokens: int = 8                 # halo width in token units per side
    flash_attention: bool = True

    def __post_init__(self):
        if self.architecture not in ("reslim", "vit"):
            raise ValueError(f"unknown architecture {self.architecture!r}")
        if self.tiles < 1 or self.compression < 1.0 or self.factor < 1:
            raise ValueError("tiles >= 1, compression >= 1, factor >= 1 required")

    # ------------------------------------------------------------------ #
    # sequence accounting
    # ------------------------------------------------------------------ #
    @property
    def fine_shape(self) -> tuple[int, int]:
        return (self.coarse_shape[0] * self.factor, self.coarse_shape[1] * self.factor)

    @property
    def output_tokens(self) -> int:
        """The paper's headline 'sequence length': fine pixels × channels / p²."""
        h, w = self.fine_shape
        p = self.config.patch_size
        return h * w * self.out_channels // (p * p)

    @property
    def token_grid(self) -> tuple[int, int]:
        """Token grid the transformer sees (before tiling/compression)."""
        p = self.config.patch_size
        if self.architecture == "reslim":
            h, w = self.coarse_shape
        else:
            h, w = self.fine_shape
        return (max(1, h // p), max(1, w // p))

    @property
    def attention_tokens_core(self) -> int:
        """Tokens attended over the whole sample, halo excluded.

        Reslim: coarse grid, variable-aggregated, after compression.  ViT
        baseline: upsampled fine grid with per-variable tokens (up to the
        3 science channels) — Table II(a)'s counting.
        """
        gh, gw = self.token_grid
        if self.architecture == "reslim":
            return max(1, int(gh * gw / self.compression))
        return gh * gw * min(self.out_channels, 3)

    def attention_tokens_per_tile(self) -> int:
        """Per-tile sequence INCLUDING halo overhead."""
        if self.tiles == 1:
            return self.attention_tokens_core
        gh, gw = self.token_grid
        rows, cols = tile_grid(self.tiles)
        th = max(1, gh // rows)
        tw = max(1, gw // cols)
        h = self.halo_tokens
        per_tile = (th + 2 * h) * (tw + 2 * h)
        if self.architecture == "vit":
            per_tile *= min(self.out_channels, 3)
        return max(1, int(per_tile / self.compression))

    @property
    def attention_tokens_total(self) -> int:
        """Sum over tiles of the per-tile (halo-inflated) sequences."""
        if self.tiles == 1:
            return self.attention_tokens_core
        return self.tiles * self.attention_tokens_per_tile()


# ---------------------------------------------------------------------- #
# FLOPs
# ---------------------------------------------------------------------- #
def transformer_flops(seq_len: int, config: ModelConfig, training: bool = True,
                      attention_divisor: float = 1.0) -> float:
    """FLOPs of one pass over ``seq_len`` tokens through the encoder.

    ``attention_divisor`` models TILES: pairwise interactions confined to
    tiles divide the quadratic term by the tile count.
    """
    d = config.embed_dim
    proj = 24.0 * seq_len * d * d
    attn = 4.0 * seq_len * seq_len * d / attention_divisor
    total = config.depth * (proj + attn)
    return 3.0 * total if training else total


def workload_flops_per_sample(w: DownscalingWorkload, training: bool = True) -> float:
    """Whole-sample FLOPs: transformer + the linear-cost heads/paths."""
    seq = w.attention_tokens_total
    flops = transformer_flops(seq, w.config, training, attention_divisor=w.tiles)
    # linear extras: residual path + decoder on the fine grid
    fh, fw = w.fine_shape
    extras = 600.0 * fh * fw * w.out_channels
    return flops + (3.0 * extras if training else extras)


# ---------------------------------------------------------------------- #
# memory
# ---------------------------------------------------------------------- #
TP_MIN_EMBED_DIM = 2048  # tensor parallelism only pays off for wide models


def _tp_ways(w: DownscalingWorkload, n_gpus: int, topology: FrontierTopology) -> int:
    """Tensor-parallel width the schedule would choose.

    Narrow models (d < 2048) run TP=1 — the per-layer all-reduce costs
    more than the sharded GEMMs save.  Wide models use a full node, the
    paper's Fig. 5 placement.
    """
    gpus_per_tile = max(1, n_gpus // w.tiles)
    if w.config.embed_dim < TP_MIN_EMBED_DIM:
        return 1
    return min(gpus_per_tile, topology.gpus_per_node)


def memory_per_gpu_bytes(w: DownscalingWorkload, n_gpus: int,
                         topology: FrontierTopology = FRONTIER) -> float:
    """Peak bytes on the busiest GPU for one training sample."""
    if n_gpus < 1:
        raise ValueError("need at least one GPU")
    params = transformer_param_count(w.config, out_channels=w.out_channels)
    gpus_per_tile = max(1, n_gpus // w.tiles)
    # FSDP/Hybrid-OP shard parameters + optimizer state over the WHOLE
    # allocation (tiles are data-parallel replicas of the same weights)
    param_bytes = BYTES_PER_PARAM_TRAIN * params / n_gpus
    seq_tile = w.attention_tokens_per_tile()
    # activations shard over the node's GPUs regardless of the time-model
    # TP choice (intra-node sequence/hidden sharding is always available
    # when the alternative is OOM)
    tp = min(gpus_per_tile, topology.gpus_per_node)
    d = w.config.embed_dim
    act_linear = C_ACT * w.config.depth * seq_tile * d * ACT_BYTES / tp
    if w.flash_attention:
        block = w.config.flash_block
        attn_peak = min(block, seq_tile) * seq_tile * ACT_BYTES * 2 / tp
    else:
        # naive attention keeps scores + probs per head for backward
        attn_peak = 2.0 * float(seq_tile) ** 2 * ACT_BYTES * w.config.num_heads / tp
    # fine-grid output buffer for this tile (fp32 prediction + target)
    fh, fw = w.fine_shape
    out_buf = 2 * 4.0 * fh * fw * w.out_channels / w.tiles
    return param_bytes + act_linear + attn_peak + out_buf


def max_output_tokens(config: ModelConfig, n_gpus: int, architecture: str = "reslim",
                      tiles: int = 1, compression: float = 1.0,
                      flash_attention: bool = True, factor: int = 4,
                      out_channels: int = 18,
                      topology: FrontierTopology = FRONTIER) -> DownscalingWorkload:
    """Largest workload (by output tokens) that fits per-GPU memory.

    Searches global 2:1 coarse grids (h, 2h); returns the fitting
    workload, whose ``output_tokens`` and fine grid give a Table III row
    (km resolution via ``repro.data.Grid``).
    """
    limit = topology.gpu.usable_memory_bytes
    best: DownscalingWorkload | None = None
    h = 8
    while h <= 2_000_000:
        w = DownscalingWorkload(
            config=config, coarse_shape=(h, 2 * h), factor=factor,
            out_channels=out_channels, architecture=architecture, tiles=tiles,
            compression=compression, flash_attention=flash_attention,
        )
        if memory_per_gpu_bytes(w, n_gpus, topology) > limit:
            break
        best = w
        h = int(h * 1.1) + 2
        h -= h % 2
    if best is None:
        raise MemoryError(
            f"{architecture}/{config.name} does not fit on {n_gpus} GPUs at any size"
        )
    return best


# ---------------------------------------------------------------------- #
# time & throughput
# ---------------------------------------------------------------------- #
def _roofline_rate(gemm_tokens: float, embed_dim: int,
                   topology: FrontierTopology = FRONTIER) -> float:
    """Achieved FLOP/s per GPU as a saturating function of GEMM shape.

    Two independent saturation factors: the GEMM inner width (d² — narrow
    models are memory-bound regardless of sequence length, the paper's
    9.5M underutilization) and the token/batch dimension (short per-tile
    sequences underfill the compute units).
    """
    d2 = float(embed_dim) ** 2
    frac = F_MAX * (d2 / (d2 + D_HALF)) * (gemm_tokens / (gemm_tokens + L_HALF))
    return topology.gpu.peak_bf16_flops * frac


def _hierarchical_allreduce_time(nbytes: float, n_gpus: int,
                                 topology: FrontierTopology = FRONTIER) -> float:
    """Intra-node reduce + inter-node tree all-reduce + intra-node bcast."""
    if n_gpus <= 1:
        return 0.0
    t_node = 2.0 * nbytes / topology.bw_same_node
    n_nodes = max(1, n_gpus // topology.gpus_per_node)
    if n_nodes > 1:
        t_cross = 2.0 * nbytes / (topology.bw_cross_node * topology.gpus_per_node) \
            + np.log2(n_nodes) * topology.lat_cross_node
    else:
        t_cross = 0.0
    return t_node + t_cross


def time_per_sample(w: DownscalingWorkload, n_gpus: int,
                    topology: FrontierTopology = FRONTIER,
                    include_io: bool = True) -> float:
    """Modelled wall-clock seconds to downscale one hourly sample.

    One sample occupies a group of ``tiles × tp`` GPUs; the cluster runs
    ``n_gpus / group`` such groups data-parallel.  Per-sample time is the
    group step time divided by the concurrency, plus the unhidden slice
    of the once-per-step gradient all-reduce and a straggler term.
    """
    if n_gpus < 1:
        raise ValueError("need at least one GPU")
    flops = workload_flops_per_sample(w)
    tp = _tp_ways(w, n_gpus, topology)
    group = min(n_gpus, w.tiles * tp)
    concurrent = max(1, n_gpus // group)
    seq_tile = w.attention_tokens_per_tile()
    rate = _roofline_rate(seq_tile, w.config.embed_dim, topology)
    t_compute = flops / (group * rate)
    # per-layer tensor-parallel all-reduces, partially overlapped
    if tp > 1:
        act_bytes = seq_tile * w.config.embed_dim * ACT_BYTES
        t_tp = (1.0 - TP_OVERLAP) * 2 * w.config.depth * (
            2 * (tp - 1) / tp * act_bytes / topology.bw_same_node
            + topology.lat_same_node
        )
    else:
        t_tp = 0.0
    params = transformer_param_count(w.config, out_channels=w.out_channels)
    t_grad = (1.0 - GRAD_OVERLAP) * _hierarchical_allreduce_time(
        2.0 * params, n_gpus, topology
    )
    # CPU-side quad-tree construction + compress/decompress scatter, only
    # partially hidden behind GPU compute (Table II(b)'s diminishing
    # returns at high compression come from exactly this term)
    t_qt = QT_SECONDS_PER_TOKEN * w.attention_tokens_core * w.compression \
        if w.compression > 1.0 else 0.0
    floor = T_FLOOR if include_io else 0.0
    t_step = floor + t_compute + t_tp + t_grad + t_qt
    if n_gpus > 512:
        t_step *= 1.0 + JITTER_PER_DOUBLING * np.log2(n_gpus / 512)
    return t_step / concurrent


def step_traffic_schedule(config: ModelConfig, tokens_per_tile: int = 4096,
                          in_channels: int = 23,
                          out_channels: int = 18) -> list[dict]:
    """The canonical collective sequence of ONE composite training step.

    Single source of truth for modeled traffic — :func:`plan_comm_costs`
    aggregates it per (level, op), :func:`modeled_step_timeline` plays it
    out on a rank timeline, and the tracer's runtime spans carry the same
    per-call bytes.  Per step: FSDP all-gathers bf16 weights before
    forward and again before backward; TP issues 2 activation all-reduces
    per layer in each direction; FSDP reduce-scatters bf16 gradients;
    the TILES and DDP levels each run one fp32 gradient all-reduce.
    """
    params = transformer_param_count(config, in_channels=in_channels,
                                     out_channels=out_channels)
    act_nbytes = tokens_per_tile * config.embed_dim * ACT_BYTES
    return [
        {"phase": "forward", "level": "fsdp", "op": "all_gather",
         "calls": 1, "nbytes": params * ACT_BYTES},
        {"phase": "forward", "level": "tp", "op": "all_reduce",
         "calls": 2 * config.depth, "nbytes": act_nbytes},
        {"phase": "backward", "level": "fsdp", "op": "all_gather",
         "calls": 1, "nbytes": params * ACT_BYTES},
        {"phase": "backward", "level": "tp", "op": "all_reduce",
         "calls": 2 * config.depth, "nbytes": act_nbytes},
        {"phase": "reduce", "level": "fsdp", "op": "reduce_scatter",
         "calls": 1, "nbytes": params * ACT_BYTES},
        {"phase": "reduce", "level": "tiles", "op": "all_reduce",
         "calls": 1, "nbytes": params * 4},
        {"phase": "reduce", "level": "ddp", "op": "all_reduce",
         "calls": 1, "nbytes": params * 4},
    ]


#: representative rank set per level (all groups of a level are congruent)
_LEVEL_RANKS = {
    "tp": lambda plan: plan.tp_ranks(0, 0, 0),
    "fsdp": lambda plan: plan.fsdp_ranks(0, 0, 0),
    "tiles": lambda plan: plan.tiles_ranks(0, 0, 0),
    "ddp": lambda plan: plan.ddp_ranks(0, 0, 0),
}


def plan_comm_costs(plan: CompositePlan, config: ModelConfig,
                    tokens_per_tile: int = 4096, in_channels: int = 23,
                    out_channels: int = 18) -> list[dict]:
    """Per-level communication bill of ONE composite training step.

    Uses the same :class:`CompositePlan` that drives execution, so the
    estimate and the runtime traffic share one rank layout: each row is
    a (level, collective) pair with its per-call bytes, call count, the
    ring-model wall-clock on the level's representative group, and the
    widest link the level crosses (the Fig. 5 placement check).  Rows
    aggregate :func:`step_traffic_schedule` — the same pricing the
    tracer and the modeled timeline use.
    """
    hierarchy = plan.communication_hierarchy()
    cluster = plan.cluster
    schedule = step_traffic_schedule(config, tokens_per_tile,
                                    in_channels, out_channels)
    order = [("tp", "all_reduce"), ("fsdp", "all_gather"),
             ("fsdp", "reduce_scatter"), ("tiles", "all_reduce"),
             ("ddp", "all_reduce")]
    calls: dict[tuple[str, str], int] = {}
    nbytes: dict[tuple[str, str], float] = {}
    for entry in schedule:
        key = (entry["level"], entry["op"])
        calls[key] = calls.get(key, 0) + entry["calls"]
        nbytes[key] = entry["nbytes"]
    rows: list[dict] = []
    for level, op in order:
        ranks = _LEVEL_RANKS[level](plan)
        group = cluster.group(ranks)
        n = calls[(level, op)]
        b = nbytes[(level, op)]
        rows.append({
            "level": level,
            "group_size": len(ranks),
            "op": op,
            "calls": n,
            "bytes_per_call": float(b),
            "time_s": n * group.collective_time(op, int(b)),
            "link": hierarchy[level],
        })
    return rows


REPLAN_VALIDATE_S = 2.0e-4
"""Per-rank re-validation/wiring cost of a reshard: rebuilding the new
plan's process groups, re-checking the level partitions, and re-arming
gradient buckets.  Linear in the new world."""


def reshard_cost(old_plan: CompositePlan, new_plan: CompositePlan,
                 state_nbytes: int) -> dict:
    """Modeled price of moving a live run from one plan to another.

    The reshard is a gather-then-scatter of the canonical state: the old
    plan's FSDP group all-gathers its shards into the canonical vector
    (export), the new world broadcasts it onto the new slices (import),
    and every new rank pays a fixed re-validation cost.  Both transfers
    are priced on the ring model of the actual clusters involved, so the
    downtime scales with state bytes and with the slowest link either
    plan's groups cross.
    """
    state_nbytes = int(state_nbytes)
    export_group = old_plan.cluster.group(old_plan.fsdp_ranks(0, 0, 0))
    import_group = new_plan.cluster.group(list(range(new_plan.world)))
    export_s = export_group.collective_time("all_gather", state_nbytes)
    import_s = import_group.collective_time("broadcast", state_nbytes)
    revalidate_s = REPLAN_VALIDATE_S * new_plan.world
    return {
        "old": old_plan.layout(),
        "new": new_plan.layout(),
        "state_bytes": state_nbytes,
        "bytes_moved": 2 * state_nbytes,
        "export_s": export_s,
        "import_s": import_s,
        "revalidate_s": revalidate_s,
        "downtime_s": export_s + import_s + revalidate_s,
    }


def plan_cost_diff(old_plan: CompositePlan, new_plan: CompositePlan,
                   config: ModelConfig, tokens_per_tile: int = 4096,
                   in_channels: int = 23, out_channels: int = 18) -> dict:
    """Per-(level, op) delta between two plans' communication bills.

    Joins :func:`plan_comm_costs` rows of both plans on (level, op) —
    the row set is fixed, so the join is total — and attaches the
    modeled :func:`reshard_cost` of moving between them (canonical state
    = fp32 params + two fp32 AdamW moments).  This is what
    ``repro plan --diff OLD NEW`` prints.
    """
    old_rows = plan_comm_costs(old_plan, config, tokens_per_tile,
                               in_channels, out_channels)
    new_rows = plan_comm_costs(new_plan, config, tokens_per_tile,
                               in_channels, out_channels)
    rows = []
    for o, n in zip(old_rows, new_rows):
        assert (o["level"], o["op"]) == (n["level"], n["op"])
        rows.append({
            "level": o["level"],
            "op": o["op"],
            "old_group_size": o["group_size"],
            "new_group_size": n["group_size"],
            "old_bytes": o["calls"] * o["bytes_per_call"],
            "new_bytes": n["calls"] * n["bytes_per_call"],
            "old_time_s": o["time_s"],
            "new_time_s": n["time_s"],
            "delta_time_s": n["time_s"] - o["time_s"],
        })
    old_total = sum(r["old_time_s"] for r in rows)
    new_total = sum(r["new_time_s"] for r in rows)
    params = transformer_param_count(config, in_channels=in_channels,
                                     out_channels=out_channels)
    # canonical state: fp32 params + 2 fp32 Adam moments
    reshard = reshard_cost(old_plan, new_plan, params * 12)
    return {
        "old": old_plan.layout(),
        "new": new_plan.layout(),
        "rows": rows,
        "old_total_s": old_total,
        "new_total_s": new_total,
        "delta_total_s": new_total - old_total,
        "reshard": reshard,
    }


def modeled_step_timeline(plan: CompositePlan, config: ModelConfig,
                          tokens_per_tile: int = 4096, in_channels: int = 23,
                          out_channels: int = 18, overlap: bool = False,
                          n_buckets: int = 8) -> list:
    """Per-rank modeled timeline of one training step — no execution.

    Plays :func:`step_traffic_schedule` out over every group of each
    level with barrier semantics (a collective starts at the latest
    member clock) and inserts roofline-priced compute segments for the
    forward and backward passes, so ``repro trace`` can render a
    world-64 step as a Perfetto timeline in milliseconds of model time.
    Returns :class:`repro.obs.Span` objects.

    ``overlap=True`` switches to a two-stream schedule per rank: compute
    stays on the main stream, while the reduce-phase collectives are
    split into ``n_buckets`` backward-driven bucket pieces launched on
    per-level comm streams (``stream="comm"`` spans) with dependency
    edges from the bucket-ready times.  Three real overlap mechanisms
    are modeled: (1) bucket k's reduction starts as soon as the tail of
    backward finalizes its gradients, (2) each parallelism level owns
    its own communicator stream, so bucket k's TILES/DDP all-reduce
    pipelines under bucket k+1's FSDP reduce-scatter, and (3) the
    backward FSDP weight all-gather is prefetched right after the
    forward one (it must complete before backward starts).  The
    ``overlap=False`` schedule is unchanged.
    """
    from ..obs.tracer import Span

    cluster = plan.cluster
    t = {r: 0.0 for r in range(plan.world)}
    spans: list = []

    def comm(entry: dict) -> None:
        for ranks in plan.level_rank_sets()[entry["level"]]:
            if len(ranks) == 1:
                continue
            group = cluster.group(ranks)
            dur = entry["calls"] * group.collective_time(
                entry["op"], int(entry["nbytes"]))
            start = max(t[r] for r in ranks)
            for r in ranks:
                spans.append(Span(
                    name=f"comm/{entry['op']}", cat="comm", rank=r,
                    start_s=start, dur_s=dur,
                    args={"op": entry["op"], "level": entry["level"],
                          "bytes": float(entry["nbytes"]),
                          "calls": entry["calls"],
                          "group_size": len(ranks), "modeled": True}))
                t[r] = start + dur

    def compute(name: str, dur: float) -> None:
        for r in range(plan.world):
            spans.append(Span(name=name, cat="compute", rank=r,
                              start_s=t[r], dur_s=dur,
                              args={"modeled": True}))
            t[r] += dur

    rate = _roofline_rate(tokens_per_tile, config.embed_dim,
                          cluster.topology)
    fwd_flops = transformer_flops(tokens_per_tile, config, training=False)
    t_fwd = fwd_flops / (plan.tp * rate)

    schedule = step_traffic_schedule(config, tokens_per_tile,
                                    in_channels, out_channels)
    by_phase: dict[str, list[dict]] = {}
    for entry in schedule:
        by_phase.setdefault(entry["phase"], []).append(entry)

    if not overlap:
        for entry in by_phase.get("forward", ()):
            if entry["op"] == "all_gather":  # weights arrive before compute
                comm(entry)
        compute("compute/forward", t_fwd)
        for entry in by_phase.get("forward", ()):
            if entry["op"] != "all_gather":
                comm(entry)
        for entry in by_phase.get("backward", ()):
            if entry["op"] == "all_gather":
                comm(entry)
        compute("compute/backward", 2.0 * t_fwd)
        for entry in by_phase.get("backward", ()):
            if entry["op"] != "all_gather":
                comm(entry)
        for entry in by_phase.get("reduce", ()):
            comm(entry)
        return spans

    # ------------------------------------------------------------------ #
    # two-stream overlapped schedule.  All groups of one level are
    # congruent (same size, same link, same ready times), so per-level
    # comm-stream frontiers and dependency edges are scalars; spans are
    # still emitted for every member rank.
    # ------------------------------------------------------------------ #
    if n_buckets < 1:
        raise ValueError("n_buckets must be >= 1")
    front: dict[str, float] = {}

    def comm_stream(entry: dict, nbytes: float, ready_s: float,
                    bucket: int | None = None) -> float:
        """Launch one async piece on its level's comm stream.

        Starts at max(ready time, dependency edge folded into
        ``ready_s``, the level stream's frontier); returns its end time
        (``ready_s`` unchanged when the level has size-1 groups).
        """
        level, op = entry["level"], entry["op"]
        end = ready_s
        for ranks in plan.level_rank_sets()[level]:
            if len(ranks) == 1:
                continue
            group = cluster.group(ranks)
            dur = group.collective_time(op, int(nbytes))
            start = max(ready_s, front.get(level, 0.0))
            end = start + dur
            args = {"op": op, "level": level, "bytes": float(nbytes),
                    "calls": 1, "group_size": len(ranks), "modeled": True,
                    "async": True}
            if bucket is not None:
                args["bucket"] = bucket
            for r in ranks:
                spans.append(Span(
                    name=f"comm/{op}", cat="comm", rank=r, start_s=start,
                    dur_s=dur, args=args, stream="comm"))
        if end != ready_s:
            front[level] = end
        return end

    for entry in by_phase.get("forward", ()):
        if entry["op"] == "all_gather":
            comm(entry)
    # FSDP prefetch: the backward weight all-gather launches on the comm
    # stream the moment the forward one is off the wire, hiding under
    # forward compute + TP traffic; backward cannot start before it lands
    prefetch_end = 0.0
    for entry in by_phase.get("backward", ()):
        if entry["op"] == "all_gather":
            for _ in range(entry["calls"]):
                prefetch_end = comm_stream(entry, entry["nbytes"],
                                           max(t.values()))
    compute("compute/forward", t_fwd)
    for entry in by_phase.get("forward", ()):
        if entry["op"] != "all_gather":
            comm(entry)
    for r in t:
        t[r] = max(t[r], prefetch_end)
    bwd_start = max(t.values())
    t_bwd = 2.0 * t_fwd
    compute("compute/backward", t_bwd)
    # backward-driven bucketed reduction: bucket k's gradients are final
    # at a uniform fraction of backward; each piece chains through the
    # reduce levels (reduce_scatter -> tiles -> ddp) on per-level streams
    reduce_entries = list(by_phase.get("reduce", ()))
    for k in range(n_buckets):
        ready = bwd_start + (k + 1) / n_buckets * t_bwd
        dep = ready
        for entry in reduce_entries:
            dep = comm_stream(entry, entry["nbytes"] / n_buckets, dep,
                              bucket=k)
    for entry in by_phase.get("backward", ()):
        if entry["op"] != "all_gather":
            comm(entry)
    # the step ends when every rank's comm streams drain
    drain = max(front.values(), default=0.0)
    for r in t:
        t[r] = max(t[r], drain)
    return spans


def overlap_report(plan: CompositePlan, config: ModelConfig,
                   tokens_per_tile: int = 4096, in_channels: int = 23,
                   out_channels: int = 18, n_buckets: int = 8) -> dict:
    """Compare the barrier and overlapped schedules of one step.

    Returns the modeled step times of both schedules, the exposed
    (unhidden) comm time of the overlapped one, the fraction of async
    comm hidden under compute, and the speedup.  By construction
    ``compute_stream_time + exposed_comm_time == step_time_overlap`` on
    the critical rank — the end-to-end consistency the benchmarks gate.
    """
    barrier = modeled_step_timeline(plan, config, tokens_per_tile,
                                    in_channels, out_channels)
    over = modeled_step_timeline(plan, config, tokens_per_tile,
                                 in_channels, out_channels,
                                 overlap=True, n_buckets=n_buckets)
    step_barrier = max((s.end_s for s in barrier), default=0.0)
    per_rank_end: dict[int, float] = {}
    compute_end: dict[int, float] = {}
    async_total: dict[int, float] = {}
    for s in over:
        per_rank_end[s.rank] = max(per_rank_end.get(s.rank, 0.0), s.end_s)
        if s.stream == "comm":
            async_total[s.rank] = async_total.get(s.rank, 0.0) + s.dur_s
        else:
            compute_end[s.rank] = max(compute_end.get(s.rank, 0.0), s.end_s)
    step_overlap = max(per_rank_end.values(), default=0.0)
    crit = max(per_rank_end, key=per_rank_end.get) if per_rank_end else 0
    t_compute = compute_end.get(crit, 0.0)
    exposed = max(0.0, step_overlap - t_compute)
    total_async = async_total.get(crit, 0.0)
    hidden = max(0.0, total_async - exposed)
    return {
        "step_time_barrier": step_barrier,
        "step_time_overlap": step_overlap,
        "compute_stream_time": t_compute,
        "exposed_comm_time": exposed,
        "overlapped_fraction": hidden / total_async if total_async else 0.0,
        "speedup": step_barrier / step_overlap if step_overlap else 1.0,
        "n_buckets": n_buckets,
    }


# ---------------------------------------------------------------------- #
# serving: inference pricing and replica-count planning
# ---------------------------------------------------------------------- #
#: host-side cost of one dispatched batch: staging the coarse fields to
#: the replica, kernel launches, and output writeback — paid once per
#: batch, which is exactly the overhead dynamic coalescing amortizes
SERVE_DISPATCH_S = 2.0e-3


@dataclass(frozen=True)
class ServiceTimeModel:
    """Modeled wall time of one coalesced inference batch.

    Linear in batch size: a fixed per-dispatch cost plus a per-sample
    roofline inference time.  Callable so the scheduler treats any
    ``batch_size -> seconds`` function interchangeably.
    """

    dispatch_s: float
    per_sample_s: float

    def __call__(self, batch_size: int) -> float:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return self.dispatch_s + batch_size * self.per_sample_s


#: generic fallback when no model config is supplied: a 126M-class
#: replica on a single GCD (~20 ms/sample at 4096 tokens)
DEFAULT_SERVICE_TIME = ServiceTimeModel(dispatch_s=SERVE_DISPATCH_S,
                                        per_sample_s=2.0e-2)


def inference_time_per_sample(config: ModelConfig,
                              tokens_per_sample: int = 4096,
                              gpus_per_replica: int = 1,
                              topology: FrontierTopology = FRONTIER) -> float:
    """Roofline seconds for one forward pass over one sample's tokens.

    The replica's GPUs split the work evenly (TILES/TP inside the
    replica are embarrassingly parallel at inference — no gradient
    traffic), so per-sample time scales 1/gpus_per_replica on top of
    the same saturating rate the training model uses.
    """
    if gpus_per_replica < 1:
        raise ValueError("gpus_per_replica must be >= 1")
    rate = _roofline_rate(tokens_per_sample, config.embed_dim, topology)
    flops = transformer_flops(tokens_per_sample, config, training=False)
    return flops / (gpus_per_replica * rate)


def service_time_model(config: ModelConfig, tokens_per_sample: int = 4096,
                       gpus_per_replica: int = 1,
                       topology: FrontierTopology = FRONTIER,
                       dispatch_s: float = SERVE_DISPATCH_S) -> ServiceTimeModel:
    """The :class:`ServiceTimeModel` for one replica of ``config``."""
    return ServiceTimeModel(
        dispatch_s=dispatch_s,
        per_sample_s=inference_time_per_sample(
            config, tokens_per_sample, gpus_per_replica, topology))


# ---------------------------------------------------------------------- #
# tile-granular serving: per-tile pricing and cache-hit-aware sizing
# ---------------------------------------------------------------------- #
def tile_inference_times(config: ModelConfig | None, *,
                         coarse_shape: tuple[int, int], n_tiles: int,
                         halo: int = 0, tokens_per_sample: int = 4096,
                         gpus_per_replica: int = 1,
                         per_sample_s: float | None = None,
                         topology: FrontierTopology = FRONTIER,
                         ) -> dict[tuple[int, int], float]:
    """Roofline seconds per distinct halo-extended tile shape.

    A tile's forward covers its *halo-extended* input, so interior tiles
    (full halos on all four sides) cost more than clamped edge tiles —
    the halo overhead the paper's Table II(b) measures.  Tokens scale
    with tile area relative to the full grid; the roofline rate is
    re-evaluated at the tile's own token count, so small tiles also pay
    the short-sequence underutilization penalty.

    With ``config=None`` the times are an area-proportional scaling of
    ``per_sample_s`` (default: :data:`DEFAULT_SERVICE_TIME`'s) — the
    generic fallback the service uses when no model config is given.
    """
    from ..core.tiles import make_tiles

    h, w = int(coarse_shape[0]), int(coarse_shape[1])
    specs = make_tiles(h, w, n_tiles, halo)
    area = float(h * w)
    out: dict[tuple[int, int], float] = {}
    for s in specs:
        sig = s.halo_shape
        if sig in out:
            continue
        ratio = (sig[0] * sig[1]) / area
        if config is None:
            base = DEFAULT_SERVICE_TIME.per_sample_s \
                if per_sample_s is None else per_sample_s
            out[sig] = base * ratio
        else:
            tokens = max(1.0, tokens_per_sample * ratio)
            rate = _roofline_rate(tokens, config.embed_dim, topology)
            flops = transformer_flops(tokens, config, training=False)
            out[sig] = flops / (gpus_per_replica * rate)
    return out


class TileServiceTimeModel:
    """Modeled wall time of one coalesced *tile* batch.

    ``dispatch_s`` is paid once per batch (the amortization cross-request
    tile batching buys); each tile adds its shape's roofline time.  The
    scheduler batches tiles of one shape signature at a time, so a call
    carries the batch's signature; unknown signatures fall back to the
    mean tile time.
    """

    def __init__(self, dispatch_s: float, tile_s: dict[tuple[int, int], float]):
        if dispatch_s < 0.0:
            raise ValueError("dispatch_s must be >= 0")
        if not tile_s or any(v < 0.0 for v in tile_s.values()):
            raise ValueError("tile_s must be a non-empty map of >= 0 times")
        self.dispatch_s = dispatch_s
        self.tile_s = dict(tile_s)
        self.mean_tile_s = sum(tile_s.values()) / len(tile_s)

    def tile_time(self, shape: tuple[int, int] | None = None) -> float:
        if shape is None:
            return self.mean_tile_s
        return self.tile_s.get(tuple(shape), self.mean_tile_s)

    def __call__(self, batch_size: int,
                 shape: tuple[int, int] | None = None) -> float:
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        return self.dispatch_s + batch_size * self.tile_time(shape)


def tile_service_time_model(config: ModelConfig | None = None, *,
                            coarse_shape: tuple[int, int], n_tiles: int,
                            halo: int = 0, tokens_per_sample: int = 4096,
                            gpus_per_replica: int = 1,
                            per_sample_s: float | None = None,
                            dispatch_s: float = SERVE_DISPATCH_S,
                            topology: FrontierTopology = FRONTIER,
                            ) -> TileServiceTimeModel:
    """The :class:`TileServiceTimeModel` for one replica serving tiles."""
    return TileServiceTimeModel(
        dispatch_s=dispatch_s,
        tile_s=tile_inference_times(
            config, coarse_shape=coarse_shape, n_tiles=n_tiles, halo=halo,
            tokens_per_sample=tokens_per_sample,
            gpus_per_replica=gpus_per_replica, per_sample_s=per_sample_s,
            topology=topology))


def cache_aware_service_time(tile_model: TileServiceTimeModel, n_tiles: int,
                             hit_rate: float) -> ServiceTimeModel:
    """Request-level pricing of tile-granular serving at an assumed
    per-tile cache hit rate.

    A request recomputes ``n_tiles * (1 - hit_rate)`` tiles in
    expectation; hits cost nothing on the replica.  The result is a
    plain :class:`ServiceTimeModel`, so the whole-request scheduler in
    :func:`serve_report` can price fleets across the hit-rate axis
    without running tile-level events — the sensitivity analysis that
    tells the capacity plan how many replicas a cache collapse costs.
    """
    if not 0.0 <= hit_rate <= 1.0:
        raise ValueError(f"hit_rate must be in [0, 1], got {hit_rate}")
    if n_tiles < 1:
        raise ValueError("n_tiles must be >= 1")
    expected_tiles = n_tiles * (1.0 - hit_rate)
    return ServiceTimeModel(
        dispatch_s=tile_model.dispatch_s,
        per_sample_s=expected_tiles * tile_model.mean_tile_s)


def serve_report(config: ModelConfig, *, scenario: str = "burst",
                 rate_rps: float = 50.0, duration_s: float = 60.0,
                 slo_p99_s: float = 0.5, max_replicas: int = 8,
                 gpus_per_replica: int = 8, max_batch: int = 8,
                 max_wait_s: float = 0.05, tokens_per_sample: int = 4096,
                 seed: int = 0, replica_counts: list[int] | None = None,
                 n_tiles: int = 1, halo: int = 0,
                 coarse_shape: tuple[int, int] | None = None,
                 hit_rates: tuple[float, ...] = (0.0, 0.5, 0.9),
                 topology: FrontierTopology = FRONTIER) -> dict:
    """Price replica counts against a p99 latency SLO.

    For each candidate replica count the traffic scenario is played
    through the *actual* serving scheduler (latency-only — no model
    executes), so the report and a real service run on the same
    configuration agree number-for-number.  Returns one row per count
    (p50/p99 latency, throughput, mean utilization, SLO verdict) plus
    ``recommended_replicas``: the smallest count whose simulated p99
    meets the SLO, or ``None`` if none does — the "how many GPUs does
    this traffic cost" answer the capacity plan needs.

    With ``n_tiles > 1`` (and ``coarse_shape`` for the tile geometry)
    the report adds ``hit_rate_sensitivity``: the same sizing pass
    repeated under the cache-hit-aware tile service-time model at each
    assumed per-tile hit rate — one row per rate, each with its own
    recommended fleet.  A rolling-forecast deployment reads its steady
    state off the high-hit-rate row and its cold-start / cache-collapse
    exposure off the 0%-row; the spread between them is the capacity the
    tile cache is worth.
    """
    # function-level import: repro.serve depends on this module
    from ..serve import BatchPolicy, DownscalingService, TrafficGenerator
    from .comm import VirtualCluster

    if slo_p99_s <= 0:
        raise ValueError("slo_p99_s must be positive")
    counts = replica_counts or list(range(1, max_replicas + 1))
    if not counts or min(counts) < 1:
        raise ValueError("replica_counts must be positive")
    st = service_time_model(config, tokens_per_sample, gpus_per_replica,
                            topology)
    gen = TrafficGenerator(scenario, rate_rps, duration_s, seed=seed)

    def size_fleet(service_time) -> tuple[list[dict], int | None]:
        rows: list[dict] = []
        recommended = None
        for n in sorted(counts):
            service = DownscalingService(
                n_replicas=n,
                policy=BatchPolicy(max_batch=max_batch, max_wait_s=max_wait_s),
                cluster=VirtualCluster(n * gpus_per_replica, topology),
                service_time=service_time)
            summary = service.run(gen.generate()).summary()
            meets = summary["latency_p99_s"] <= slo_p99_s
            rows.append({
                "replicas": n,
                "gpus": n * gpus_per_replica,
                "p50_s": summary["latency_p50_s"],
                "p99_s": summary["latency_p99_s"],
                "throughput_rps": summary["throughput_rps"],
                "utilization_mean": summary["utilization_mean"],
                "meets_slo": meets,
            })
            if meets and recommended is None:
                recommended = n
        return rows, recommended

    rows, recommended = size_fleet(st)
    report = {
        "scenario": scenario,
        "rate_rps": rate_rps,
        "duration_s": duration_s,
        "slo_p99_s": slo_p99_s,
        "gpus_per_replica": gpus_per_replica,
        "per_sample_s": st.per_sample_s,
        "dispatch_s": st.dispatch_s,
        "rows": rows,
        "recommended_replicas": recommended,
    }
    if n_tiles > 1:
        if coarse_shape is None:
            raise ValueError("tiled serve_report needs coarse_shape=(h, w)")
        tm = tile_service_time_model(
            config, coarse_shape=coarse_shape, n_tiles=n_tiles, halo=halo,
            tokens_per_sample=tokens_per_sample,
            gpus_per_replica=gpus_per_replica, topology=topology)
        sensitivity = []
        for hr in hit_rates:
            hr_rows, hr_rec = size_fleet(
                cache_aware_service_time(tm, n_tiles, hr))
            at_rec = next((r for r in hr_rows if r["replicas"] == hr_rec),
                          None)
            sensitivity.append({
                "hit_rate": hr,
                "recommended_replicas": hr_rec,
                "p99_at_recommended_s":
                    at_rec["p99_s"] if at_rec else None,
                "rows": hr_rows,
            })
        report["tiles"] = {"n_tiles": n_tiles, "halo": halo,
                           "coarse_shape": list(coarse_shape),
                           "per_tile_s": tm.mean_tile_s,
                           "dispatch_s": tm.dispatch_s}
        report["hit_rate_sensitivity"] = sensitivity
    return report


def sustained_flops(w: DownscalingWorkload, n_gpus: int,
                    topology: FrontierTopology = FRONTIER) -> float:
    """Application-level FLOP/s: work per sample ÷ wall time per sample."""
    return workload_flops_per_sample(w) / time_per_sample(w, n_gpus, topology)


def strong_scaling_efficiency(w: DownscalingWorkload, n_gpus_list: list[int],
                              baseline_gpus: int | None = None,
                              topology: FrontierTopology = FRONTIER) -> dict[int, float]:
    """Speedup per GPU relative to the baseline count (paper: 512 GPUs)."""
    baseline_gpus = baseline_gpus or n_gpus_list[0]
    t0 = time_per_sample(w, baseline_gpus, topology)
    out = {}
    for n in n_gpus_list:
        t = time_per_sample(w, n, topology)
        out[n] = (t0 * baseline_gpus) / (t * n)
    return out
