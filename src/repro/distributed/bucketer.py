"""Backward-driven gradient bucketing over flat parameter buffers.

Real DDP implementations do not wait for the whole backward pass before
reducing gradients: parameters are packed into fixed-size *buckets* in
reverse registration order (gradients become final roughly tail-first on
the tape walk), and each bucket's collective launches the moment its
last member gradient is accumulated.  The tail of backward then runs
concurrently with the reduction of earlier buckets — the overlap that
ORBIT-2's strong scaling on Frontier depends on.

:class:`GradBucketer` reproduces that machinery on the virtual cluster:

* buckets are contiguous ``[lo, hi)`` slices of a
  :class:`~repro.nn.flat.FlatParamBuffer` (reverse-parameter-order
  packing makes each bucket a contiguous tail-first range);
* per-parameter *ready hooks* are armed on the autograd leaves, firing
  exactly once per backward when the leaf's gradient is final;
* a bucket whose every member fired invokes the launch callback; a
  post-backward :meth:`flush` covers parameters that never received a
  gradient (the "last bucket flush").

Bit-identity with the eager whole-buffer path is preserved by
:func:`aligned_ring_chunks`: a ring all-reduce's float32 rounding is
determined by its chunk partition, so bucketed calls pass the global
partition's intersection with the bucket instead of re-chunking.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..nn.flat import FlatParamBuffer

__all__ = ["GradBucket", "GradBucketer", "aligned_ring_chunks"]


def aligned_ring_chunks(lo: int, hi: int, total: int,
                        group_size: int) -> list[np.ndarray]:
    """Ring chunk partition for the slice ``[lo, hi)`` of a flat buffer.

    Returns ``group_size`` index arrays (relative to ``lo``; empty arrays
    allowed) — the intersection of the bucket with the *global* partition
    ``np.array_split(np.arange(total), group_size)``.  Passing these to
    ``ProcessGroup.all_reduce(..., chunks=...)`` makes the bucket-sized
    ring reduction start each element's cyclic summation at the same
    chunk as the whole-buffer call would, so float32 results match the
    corresponding slice bit for bit.
    """
    if not 0 <= lo <= hi <= total:
        raise ValueError(f"bucket [{lo}, {hi}) outside buffer of {total}")
    base, extra = divmod(total, group_size)
    edges = np.cumsum([0] + [base + 1 if i < extra else base
                             for i in range(group_size)])
    out: list[np.ndarray] = []
    for g_lo, g_hi in zip(edges[:-1], edges[1:]):
        s, e = max(lo, int(g_lo)), min(hi, int(g_hi))
        if e > s:
            out.append(np.arange(s, e, dtype=np.int64) - lo)
        else:
            out.append(np.empty(0, dtype=np.int64))
    return out


class GradBucket:
    """One contiguous slice of the flat gradient buffer awaiting reduction."""

    __slots__ = ("index", "lo", "hi", "params", "pending", "launched")

    def __init__(self, index: int, lo: int, hi: int, params: list):
        self.index = index
        self.lo = lo
        self.hi = hi
        self.params = params
        self.pending = len(params)
        self.launched = False

    @property
    def nbytes(self) -> int:
        return 4 * (self.hi - self.lo)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"GradBucket({self.index}, [{self.lo}, {self.hi}), "
                f"{len(self.params)} params)")


class GradBucketer:
    """Fixed-size reverse-order gradient buckets over one flat buffer.

    Parameters
    ----------
    buffer:
        The :class:`FlatParamBuffer` whose gradient the buckets slice.
    bucket_bytes:
        Target bucket size.  A bucket closes once it reaches this many
        bytes (a single oversized parameter still gets its own bucket,
        as in torch DDP).
    """

    def __init__(self, buffer: FlatParamBuffer, bucket_bytes: int = 1 << 16):
        if bucket_bytes < 4:
            raise ValueError("bucket_bytes must hold at least one float32")
        self.buffer = buffer
        self.bucket_bytes = int(bucket_bytes)
        self.buckets: list[GradBucket] = []
        members: list = []
        hi = buffer.size
        lo = hi
        # reverse registration order: gradients finalize roughly
        # tail-first, and reversed parameters are contiguous from the
        # buffer's tail, so every bucket is one contiguous [lo, hi) slice
        for p, (p_lo, _p_hi) in zip(reversed(buffer.params),
                                    reversed(buffer.spans)):
            members.append(p)
            lo = p_lo
            if 4 * (hi - lo) >= self.bucket_bytes:
                self.buckets.append(
                    GradBucket(len(self.buckets), lo, hi, members))
                members, hi = [], lo
        if members:
            self.buckets.append(GradBucket(len(self.buckets), lo, hi, members))
        self._param_bucket = {id(p): b for b in self.buckets for p in b.params}
        self._launch: Callable[[GradBucket], None] | None = None

    # ------------------------------------------------------------------ #
    # hook lifecycle
    # ------------------------------------------------------------------ #
    def arm(self, launch: Callable[[GradBucket], None]) -> None:
        """Install ready hooks; ``launch(bucket)`` fires on the tape walk
        as soon as every member gradient of a bucket is final."""
        self._launch = launch
        for b in self.buckets:
            b.pending = len(b.params)
            b.launched = False
        for b in self.buckets:
            for p in b.params:
                p._ready_hook = self._on_ready

    def _on_ready(self, param) -> None:
        bucket = self._param_bucket[id(param)]
        bucket.pending -= 1
        if bucket.pending == 0 and not bucket.launched:
            bucket.launched = True
            self._launch(bucket)

    def flush(self) -> None:
        """Launch every bucket the tape walk never completed.

        Covers parameters outside the graph (no gradient contribution)
        and the partially-filled head bucket.  Launch order stays the
        bucket order (tail-first) for a deterministic schedule.
        """
        for b in self.buckets:
            if not b.launched:
                b.launched = True
                self._launch(b)

    def disarm(self) -> None:
        """Remove the ready hooks (restores the zero-overhead tape walk)."""
        for b in self.buckets:
            for p in b.params:
                p._ready_hook = None
        self._launch = None
