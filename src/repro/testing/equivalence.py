"""Parallel-equivalence oracle.

ORBIT-2's parallelisms are only worth their communication savings if they
compute the *same thing* as single-rank execution.  This module turns
that claim into a callable check: :func:`check_parallel_equivalence` runs
a tiny Reslim (or the strategy's natural micro-workload) under a
single-rank reference path and under one of the simulated-cluster
engines, then compares outputs, gradients, and post-SGD-step parameters.

Exactness tiers (recorded per comparison in the returned report):

* **bit-for-bit** — byte-identical arrays.  Holds wherever no collective
  reorders a floating-point reduction: every strategy at ``world == 1``,
  and FSDP at every world size (its reduce-scatter accumulates in
  float64, and a mean of identical contributions is exact).
* **tolerance-bounded** — ring all-reduce chunks reductions in rank
  order, so DDP/TP/TILES at ``world > 1`` agree only to float32 rounding;
  Hybrid-OP's reference intentionally runs in float64, so it is
  tolerance-bounded even serially.

Any disagreement beyond the strategy's tolerance raises
:class:`EquivalenceFailure`; the report is for inspection and for tests
that want to *assert* bit-exactness where it is guaranteed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core import ModelConfig, Reslim, TiledDownscaler
from ..core.tiles import extract_tile, make_tiles
from ..distributed import (
    DistributedDataParallel,
    FSDPEngine,
    HybridOpChain,
    TensorParallelMLP,
    TilesSequenceParallel,
    UlyssesAttention,
    VirtualCluster,
    flatten_grads,
)
from ..distributed.fsdp import unshard_arrays
from ..distributed.ulysses import merge_sequence, split_sequence
from ..tensor import Tensor

__all__ = [
    "PARALLELISMS",
    "Comparison",
    "EquivalenceReport",
    "EquivalenceFailure",
    "check_parallel_equivalence",
    "oracle_config",
]

#: Every strategy the oracle knows how to drive.
PARALLELISMS: tuple[str, ...] = ("ddp", "fsdp", "tp", "ulysses", "hybrid_op", "tiles")

#: (rtol, atol) per strategy — float32 ring-reduction rounding for most;
#: Hybrid-OP compares against a float64 reference so it needs headroom.
_TOLERANCES: dict[str, tuple[float, float]] = {
    "ddp": (1e-4, 1e-5),
    "fsdp": (1e-4, 1e-5),
    "tp": (1e-4, 1e-4),
    "ulysses": (1e-4, 1e-5),
    "hybrid_op": (1e-3, 1e-4),
    "tiles": (1e-4, 1e-5),
}


class EquivalenceFailure(AssertionError):
    """A parallel execution disagreed with its single-rank reference."""


@dataclass(frozen=True)
class Comparison:
    """One quantity compared between parallel and reference execution."""

    quantity: str          # 'output' | 'gradients' | 'params'
    max_abs_err: float
    bit_exact: bool

    def __str__(self) -> str:
        tag = "bit-exact" if self.bit_exact else f"max_abs_err={self.max_abs_err:.3g}"
        return f"{self.quantity}: {tag}"


@dataclass
class EquivalenceReport:
    """Everything one oracle run measured."""

    strategy: str
    world: int
    comparisons: list[Comparison] = field(default_factory=list)
    notes: str = ""

    @property
    def bit_exact(self) -> bool:
        """True when every compared quantity matched byte-for-byte."""
        return all(c.bit_exact for c in self.comparisons)

    def comparison(self, quantity: str) -> Comparison:
        for c in self.comparisons:
            if c.quantity == quantity:
                return c
        raise KeyError(f"no {quantity!r} comparison in report")

    def summary(self) -> str:
        body = "; ".join(str(c) for c in self.comparisons)
        return f"{self.strategy}@world={self.world}: {body}"


def oracle_config() -> ModelConfig:
    """The tiny Reslim config every oracle run shares.

    ``embed_dim=16, num_heads=8`` keeps head count and the 4x MLP hidden
    width (64) divisible by every world size up to 8, so one config
    serves the whole {1, 2, 4, 8} x strategy matrix.
    """
    return ModelConfig("oracle-tiny", embed_dim=16, depth=1, num_heads=8)


def _mse(pred: Tensor, target: Tensor) -> Tensor:
    diff = pred - target
    return (diff * diff).mean()


def _make_model(config: ModelConfig, seed: int) -> Reslim:
    return Reslim(config, in_channels=2, out_channels=1, factor=2,
                  max_tokens=256, rng=np.random.default_rng(seed))


def _sgd(model, lr: float) -> None:
    for p in model.parameters():
        if p.grad is not None:
            p.data -= lr * p.grad


def _compare(quantity: str, actual: np.ndarray, expected: np.ndarray,
             rtol: float, atol: float, context: str) -> Comparison:
    actual = np.asarray(actual)
    expected = np.asarray(expected)
    if actual.shape != expected.shape:
        raise EquivalenceFailure(
            f"{context}: {quantity} shape {actual.shape} != reference {expected.shape}")
    err = np.abs(actual.astype(np.float64) - expected.astype(np.float64))
    bound = atol + rtol * np.abs(expected.astype(np.float64))
    if np.any(err > bound):
        worst = np.unravel_index(int(np.argmax(err)), err.shape)
        raise EquivalenceFailure(
            f"{context}: {quantity} diverged — {int(np.sum(err > bound))} elements "
            f"beyond rtol={rtol} atol={atol}; worst at {list(worst)}: "
            f"parallel={actual[worst]:.6g} reference={expected[worst]:.6g}")
    return Comparison(quantity, float(err.max()) if err.size else 0.0,
                      bool(np.array_equal(actual, expected)))


# --------------------------------------------------------------------- #
# per-strategy runners
# --------------------------------------------------------------------- #
def _run_ddp(world, config, seed, lr, rtol, atol):
    rng = np.random.default_rng(seed)
    batch = int(np.lcm(8, world))
    x = rng.standard_normal((batch, 2, 8, 8)).astype(np.float32)
    y = rng.standard_normal((batch, 1, 16, 16)).astype(np.float32)

    ref = _make_model(config, seed)
    ref_out = ref(Tensor(x))
    loss = _mse(ref_out, Tensor(y))
    loss.backward()
    ref_grads = flatten_grads(ref)
    _sgd(ref, lr)
    ref_params = flatten_params(ref)

    # deliberately diverse init seeds: DDP must broadcast rank 0's weights
    replicas = [_make_model(config, seed if r == 0 else seed + 100 + r)
                for r in range(world)]
    group = VirtualCluster(world).world_group()
    ddp = DistributedDataParallel(replicas, group, _mse)
    # per-rank forwards on the batch shards, before the step mutates grads
    shard_outs = [rep(Tensor(xs)).data
                  for rep, xs in zip(replicas, np.array_split(x, world))]
    ddp.step_gradients(x, y)
    ctx = f"ddp@world={world}"
    comparisons = [
        _compare("output", np.concatenate(shard_outs), ref_out.data,
                 rtol, atol, ctx),
        _compare("gradients", flatten_grads(replicas[0]), ref_grads,
                 rtol, atol, ctx),
    ]
    for rep in replicas:
        _sgd(rep, lr)
    comparisons.append(_compare("params", flatten_params(replicas[0]), ref_params,
                                rtol, atol, ctx))
    note = "gradients averaged by ring all-reduce; float32 chunk order"
    return comparisons, note


def flatten_params(model) -> np.ndarray:
    """Concatenate all parameters into one flat float32 vector."""
    return np.concatenate([p.data.reshape(-1) for p in model.parameters()]).astype(np.float32)


def _run_fsdp(world, config, seed, lr, rtol, atol):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((4, 2, 8, 8)).astype(np.float32)
    y = rng.standard_normal((4, 1, 16, 16)).astype(np.float32)

    ref = _make_model(config, seed)
    ref_out = ref(Tensor(x))
    loss = _mse(ref_out, Tensor(y))
    loss.backward()
    ref_grads = {
        n: (p.grad.copy() if p.grad is not None else np.zeros_like(p.data))
        for n, p in ref.named_parameters()
    }
    _sgd(ref, lr)
    ref_params = {n: p.data.copy() for n, p in ref.named_parameters()}

    net = _make_model(config, seed)
    group = VirtualCluster(world).world_group()
    engine = FSDPEngine(net, group)
    engine.gather_all()
    net.zero_grad()
    out = net(Tensor(x))
    _mse(out, Tensor(y)).backward()
    grad_shards = engine.reduce_scatter_grads()

    ctx = f"fsdp@world={world}"
    comparisons = [_compare("output", out.data, ref_out.data, rtol, atol, ctx)]
    # reassemble each parameter's gradient from its per-rank shards
    max_err, exact = 0.0, True
    for name, g_ref in ref_grads.items():
        shards = [grad_shards[r][name] for r in range(world)]
        g = unshard_arrays(shards, g_ref.shape)
        c = _compare(f"gradients[{name}]", g, g_ref, rtol, atol, ctx)
        max_err, exact = max(max_err, c.max_abs_err), exact and c.bit_exact
    comparisons.append(Comparison("gradients", max_err, exact))

    engine.apply_sharded_update(grad_shards, lr)
    max_err, exact = 0.0, True
    for name, p in net.named_parameters():
        c = _compare(f"params[{name}]", p.data, ref_params[name], rtol, atol, ctx)
        max_err, exact = max(max_err, c.max_abs_err), exact and c.bit_exact
    comparisons.append(Comparison("params", max_err, exact))
    note = "reduce-scatter accumulates in float64; identical contributions → exact"
    return comparisons, note


def _run_tp(world, config, seed, lr, rtol, atol):
    rng = np.random.default_rng(seed)
    d = config.embed_dim
    hidden = int(config.mlp_ratio * d)
    w1 = rng.standard_normal((hidden, d)).astype(np.float32) * 0.3
    b1 = rng.standard_normal(hidden).astype(np.float32)
    w2 = rng.standard_normal((d, hidden)).astype(np.float32) * 0.3
    b2 = rng.standard_normal(d).astype(np.float32)
    x = rng.standard_normal((5, d)).astype(np.float32)

    group = VirtualCluster(world).world_group()
    mlp = TensorParallelMLP(w1, b1, w2, b2, group)
    out = mlp.forward(x)
    ref = TensorParallelMLP.reference(x, w1, b1, w2, b2)
    comparisons = [_compare("output", out, ref, rtol, atol, f"tp@world={world}")]
    note = "forward-only engine: one all-reduce of row-parallel partials"
    return comparisons, note


def _run_ulysses(world, config, seed, lr, rtol, atol):
    rng = np.random.default_rng(seed)
    heads = config.num_heads
    head_dim = config.embed_dim // heads
    seq = 16
    q, k, v = (rng.standard_normal((seq, heads, head_dim)).astype(np.float32)
               for _ in range(3))

    group = VirtualCluster(world).world_group()
    ul = UlyssesAttention(group, num_heads=heads)
    out_shards = ul.forward(split_sequence(q, world), split_sequence(k, world),
                            split_sequence(v, world))
    out = merge_sequence(out_shards)
    ref = ul.reference(q, k, v)
    comparisons = [_compare("output", out, ref, rtol, atol,
                            f"ulysses@world={world}")]
    note = "per-head attention is rank-local; all-to-alls only permute data"
    return comparisons, note


def _run_hybrid_op(world, config, seed, lr, rtol, atol):
    rng = np.random.default_rng(seed)
    d = config.embed_dim
    hidden = int(config.mlp_ratio * d)
    dims = [d, hidden, d, hidden, d]
    weights = [rng.standard_normal((dims[i + 1], dims[i])).astype(np.float32) * 0.3
               for i in range(len(dims) - 1)]
    x = rng.standard_normal((3, d)).astype(np.float32)

    group = VirtualCluster(world).world_group()
    chain = HybridOpChain(weights, group)
    comparisons = [_compare("output", chain.forward(x), chain.reference(x),
                            rtol, atol, f"hybrid_op@world={world}")]
    note = "reference runs in float64, so agreement is tolerance-bounded by design"
    return comparisons, note


def _run_tiles(world, config, seed, lr, rtol, atol):
    rng = np.random.default_rng(seed)
    halo, factor = 2, 2
    x = rng.standard_normal((1, 2, 16, 16)).astype(np.float32)
    y = rng.standard_normal((1, 1, 32, 32)).astype(np.float32)

    ref = _make_model(config, seed)
    serial_out = TiledDownscaler(ref, n_tiles=world, halo=halo, factor=factor)(Tensor(x))

    # serial reference for the gradient step: same per-tile loop on ONE
    # model, averaging tile gradients in float64 (mirrors the all-reduce)
    specs = make_tiles(16, 16, world, halo)
    tile_grads = []
    for spec in specs:
        ref.zero_grad()
        out = ref(extract_tile(Tensor(x), spec))
        top, left = (spec.y0 - spec.hy0) * factor, (spec.x0 - spec.hx0) * factor
        ch, cw = spec.core_shape
        core = out[:, :, top:top + ch * factor, left:left + cw * factor]
        tile_target = Tensor(y[:, :, spec.y0 * factor:spec.y1 * factor,
                               spec.x0 * factor:spec.x1 * factor])
        _mse(core, tile_target).backward()
        tile_grads.append(flatten_grads(ref).astype(np.float64))
    ref_grads = np.mean(tile_grads, axis=0).astype(np.float32)
    offset = 0
    for p in ref.parameters():
        n = p.data.size
        p.data -= lr * ref_grads[offset:offset + n].reshape(p.data.shape)
        offset += n
    ref_params = flatten_params(ref)

    replicas = [_make_model(config, seed if r == 0 else seed + 100 + r)
                for r in range(world)]
    group = VirtualCluster(world).world_group()
    tsp = TilesSequenceParallel(replicas, group, halo=halo, factor=factor)
    ctx = f"tiles@world={world}"
    comparisons = [_compare("output", tsp.forward(x), serial_out.data,
                            rtol, atol, ctx)]
    tsp.step_gradients(x, y, _mse)
    comparisons.append(_compare("gradients", flatten_grads(replicas[0]),
                                ref_grads, rtol, atol, ctx))
    for rep in replicas:
        _sgd(rep, lr)
    comparisons.append(_compare("params", flatten_params(replicas[0]),
                                ref_params, rtol, atol, ctx))
    note = "reference is the serial TiledDownscaler (same tiling, one rank)"
    return comparisons, note


_RUNNERS = {
    "ddp": _run_ddp,
    "fsdp": _run_fsdp,
    "tp": _run_tp,
    "ulysses": _run_ulysses,
    "hybrid_op": _run_hybrid_op,
    "tiles": _run_tiles,
}


def check_parallel_equivalence(strategy: str, world: int,
                               config: ModelConfig | None = None,
                               seed: int = 0, lr: float = 0.05,
                               rtol: float | None = None,
                               atol: float | None = None) -> EquivalenceReport:
    """Run one strategy at one world size and compare against single-rank.

    Raises :class:`EquivalenceFailure` on any out-of-tolerance element;
    returns an :class:`EquivalenceReport` whose per-quantity
    ``bit_exact`` flags record where agreement was byte-identical.
    """
    if strategy not in _RUNNERS:
        raise ValueError(f"unknown strategy {strategy!r}; known: {sorted(_RUNNERS)}")
    if world < 1:
        raise ValueError("world must be >= 1")
    config = config or oracle_config()
    d_rtol, d_atol = _TOLERANCES[strategy]
    rtol = d_rtol if rtol is None else rtol
    atol = d_atol if atol is None else atol
    comparisons, note = _RUNNERS[strategy](world, config, seed, lr, rtol, atol)
    return EquivalenceReport(strategy=strategy, world=world,
                             comparisons=comparisons, notes=note)
