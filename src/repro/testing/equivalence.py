"""Parallel-equivalence oracle.

ORBIT-2's parallelisms are only worth their communication savings if they
compute the *same thing* as single-rank execution.  This module turns
that claim into a callable check: :func:`check_parallel_equivalence` runs
a tiny Reslim (or the strategy's natural micro-workload) under a
single-rank reference path and under one of the simulated-cluster
engines, then compares outputs, gradients, and post-SGD-step parameters.

Every strategy is driven through the uniform
:class:`~repro.distributed.strategy.ParallelStrategy` interface, so the
oracle has exactly two runners — one for trainable strategies (output,
gradients, params) and one for forward-only engines (output) — plus a
per-strategy :class:`OracleSpec` that builds the strategy and its
micro-workload.  Adding a parallelism to the oracle is one table entry.

Exactness tiers (recorded per comparison in the returned report):

* **bit-for-bit** — byte-identical arrays.  Holds wherever no collective
  reorders a floating-point reduction: every strategy at ``world == 1``,
  and FSDP at every world size (its reduce-scatter accumulates in
  float64, and a mean of identical contributions is exact).
* **tolerance-bounded** — ring all-reduce chunks reductions in rank
  order, so DDP/TP/TILES at ``world > 1`` agree only to float32 rounding;
  Hybrid-OP's reference intentionally runs in float64, so it is
  tolerance-bounded even serially.

Any disagreement beyond the strategy's tolerance raises
:class:`EquivalenceFailure`; the report is for inspection and for tests
that want to *assert* bit-exactness where it is guaranteed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

import numpy as np

from ..core import ModelConfig, Reslim
from ..distributed import (
    DistributedDataParallel,
    VirtualCluster,
    flatten_grads,
)
from ..distributed.strategy import (
    CompositePlan,
    CompositeStrategy,
    DDPStrategy,
    FSDPStrategy,
    HybridOpStrategy,
    ParallelStrategy,
    PipelineStrategy,
    TensorParallelStrategy,
    TilesStrategy,
    UlyssesStrategy,
)
from ..nn import Linear
from ..tensor import Tensor

__all__ = [
    "PARALLELISMS",
    "Comparison",
    "EquivalenceReport",
    "EquivalenceFailure",
    "OracleSpec",
    "check_parallel_equivalence",
    "oracle_config",
]

#: Every strategy the oracle knows how to drive.  The ``*_overlap``
#: variants run the same engines with backward-driven bucketed async
#: reduction — the oracle is the proof they are numerically the same
#: schedule.  The ``*_compiled`` variants replay captured step programs
#: (:mod:`repro.tensor.compile`) instead of re-walking the tape; the
#: bitwise-vs-eager claim is asserted separately in the test suite.
PARALLELISMS: tuple[str, ...] = (
    "ddp", "fsdp", "tp", "ulysses", "hybrid_op", "tiles", "pipeline", "composite",
    "ddp_overlap", "fsdp_overlap", "composite_overlap",
    "ddp_compiled", "composite_compiled", "composite_overlap_compiled",
    "grow", "shrink", "grow_compiled",
)

#: (rtol, atol) per strategy — float32 ring-reduction rounding for most;
#: Hybrid-OP compares against a float64 reference so it needs headroom.
_TOLERANCES: dict[str, tuple[float, float]] = {
    "ddp": (1e-4, 1e-5),
    "fsdp": (1e-4, 1e-5),
    "tp": (1e-4, 1e-4),
    "ulysses": (1e-4, 1e-5),
    "hybrid_op": (1e-3, 1e-4),
    "tiles": (1e-4, 1e-5),
    "pipeline": (1e-4, 1e-5),
    "composite": (1e-4, 1e-5),
    "ddp_overlap": (1e-4, 1e-5),
    "fsdp_overlap": (1e-4, 1e-5),
    "composite_overlap": (1e-4, 1e-5),
    "ddp_compiled": (1e-4, 1e-5),
    "composite_compiled": (1e-4, 1e-5),
    "composite_overlap_compiled": (1e-4, 1e-5),
    "grow": (1e-4, 1e-5),
    "shrink": (1e-4, 1e-5),
    "grow_compiled": (1e-4, 1e-5),
}

#: world → (tp, fsdp, tiles, ddp) for the composite oracle runs.  Chosen
#: so every level with headroom is exercised: world 8 runs a genuine
#: three-level FSDP×TILES×DDP stack, world 16 adds tensor parallelism.
_COMPOSITE_FACTORS: dict[int, tuple[int, int, int, int]] = {
    1: (1, 1, 1, 1),
    2: (1, 1, 2, 1),
    4: (1, 1, 2, 2),
    8: (1, 2, 2, 2),
    16: (2, 2, 2, 2),
}


class EquivalenceFailure(AssertionError):
    """A parallel execution disagreed with its single-rank reference."""


@dataclass(frozen=True)
class Comparison:
    """One quantity compared between parallel and reference execution."""

    quantity: str          # 'output' | 'gradients' | 'params'
    max_abs_err: float
    bit_exact: bool

    def __str__(self) -> str:
        tag = "bit-exact" if self.bit_exact else f"max_abs_err={self.max_abs_err:.3g}"
        return f"{self.quantity}: {tag}"


@dataclass
class EquivalenceReport:
    """Everything one oracle run measured."""

    strategy: str
    world: int
    comparisons: list[Comparison] = field(default_factory=list)
    notes: str = ""

    @property
    def bit_exact(self) -> bool:
        """True when every compared quantity matched byte-for-byte."""
        return all(c.bit_exact for c in self.comparisons)

    def comparison(self, quantity: str) -> Comparison:
        for c in self.comparisons:
            if c.quantity == quantity:
                return c
        raise KeyError(f"no {quantity!r} comparison in report")

    def summary(self) -> str:
        body = "; ".join(str(c) for c in self.comparisons)
        return f"{self.strategy}@world={self.world}: {body}"


def oracle_config() -> ModelConfig:
    """The tiny Reslim config every oracle run shares.

    ``embed_dim=16, num_heads=8`` keeps head count and the 4x MLP hidden
    width (64) divisible by every world size up to 8, so one config
    serves the whole {1, 2, 4, 8} x strategy matrix.
    """
    return ModelConfig("oracle-tiny", embed_dim=16, depth=1, num_heads=8)


def _mse(pred: Tensor, target: Tensor) -> Tensor:
    diff = pred - target
    return (diff * diff).mean()


def _make_model(config: ModelConfig, seed: int) -> Reslim:
    return Reslim(config, in_channels=2, out_channels=1, factor=2,
                  max_tokens=256, rng=np.random.default_rng(seed))


def _sgd(model, lr: float) -> None:
    for p in model.parameters():
        if p.grad is not None:
            p.data -= lr * p.grad


def flatten_params(model) -> np.ndarray:
    """Concatenate all parameters into one flat float32 vector."""
    return np.concatenate([p.data.reshape(-1) for p in model.parameters()]).astype(np.float32)


def _apply_flat_sgd(model, flat_grads: np.ndarray, lr: float) -> None:
    """SGD on a model from a flat gradient vector (the reference step)."""
    offset = 0
    for p in model.parameters():
        n = p.data.size
        p.data -= lr * flat_grads[offset:offset + n].reshape(p.data.shape)
        offset += n


def _compare(quantity: str, actual: np.ndarray, expected: np.ndarray,
             rtol: float, atol: float, context: str) -> Comparison:
    actual = np.asarray(actual)
    expected = np.asarray(expected)
    if actual.shape != expected.shape:
        raise EquivalenceFailure(
            f"{context}: {quantity} shape {actual.shape} != reference {expected.shape}")
    err = np.abs(actual.astype(np.float64) - expected.astype(np.float64))
    bound = atol + rtol * np.abs(expected.astype(np.float64))
    if np.any(err > bound):
        worst = np.unravel_index(int(np.argmax(err)), err.shape)
        raise EquivalenceFailure(
            f"{context}: {quantity} diverged — {int(np.sum(err > bound))} elements "
            f"beyond rtol={rtol} atol={atol}; worst at {list(worst)}: "
            f"parallel={actual[worst]:.6g} reference={expected[worst]:.6g}")
    return Comparison(quantity, float(err.max()) if err.size else 0.0,
                      bool(np.array_equal(actual, expected)))


# --------------------------------------------------------------------- #
# the per-strategy table: how to build each strategy's micro-workload
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class OracleSpec:
    """One oracle entry: a builder plus the note for its report."""

    build: Callable  # (world, config, seed, rng) -> (strategy, data)
    note: str


def _diverse_factory(config: ModelConfig, seed: int):
    """Replica factory with deliberately diverse init seeds: the engines
    must broadcast rank 0's weights for the oracle to pass."""
    return lambda r: _make_model(config, seed if r == 0 else seed + 100 + r)


def _build_ddp(world, config, seed, rng, overlap=False, compile=False):
    batch = int(np.lcm(8, world))
    x = rng.standard_normal((batch, 2, 8, 8)).astype(np.float32)
    y = rng.standard_normal((batch, 1, 16, 16)).astype(np.float32)
    strat = DDPStrategy(_mse, overlap=overlap, bucket_bytes=1 << 12,
                        compile=compile)
    strat.setup(_diverse_factory(config, seed), VirtualCluster(world).world_group())
    return strat, (x, y)


def _build_ddp_overlap(world, config, seed, rng):
    return _build_ddp(world, config, seed, rng, overlap=True)


def _build_ddp_compiled(world, config, seed, rng):
    return _build_ddp(world, config, seed, rng, compile=True)


def _build_fsdp(world, config, seed, rng, overlap=False):
    x = rng.standard_normal((4, 2, 8, 8)).astype(np.float32)
    y = rng.standard_normal((4, 1, 16, 16)).astype(np.float32)
    strat = FSDPStrategy(_mse, overlap=overlap, bucket_bytes=1 << 12)
    strat.setup(lambda r: _make_model(config, seed),
                VirtualCluster(world).world_group())
    return strat, (x, y)


def _build_fsdp_overlap(world, config, seed, rng):
    return _build_fsdp(world, config, seed, rng, overlap=True)


def _build_tiles(world, config, seed, rng):
    x = rng.standard_normal((1, 2, 16, 16)).astype(np.float32)
    y = rng.standard_normal((1, 1, 32, 32)).astype(np.float32)
    strat = TilesStrategy(_mse, halo=2, factor=2)
    strat.setup(_diverse_factory(config, seed), VirtualCluster(world).world_group())
    return strat, (x, y)


def _build_composite(world, config, seed, rng, overlap=False, compile=False):
    tp, fsdp, tiles, ddp = _COMPOSITE_FACTORS.get(world, (1, 1, 1, world))
    plan = CompositePlan(VirtualCluster(world), tp=tp, fsdp=fsdp,
                         tiles=tiles, ddp=ddp)
    x = rng.standard_normal((ddp, 2, 16, 16)).astype(np.float32)
    y = rng.standard_normal((ddp, 1, 32, 32)).astype(np.float32)
    strat = CompositeStrategy(plan, _mse, halo=2, factor=2,
                              overlap=overlap, bucket_bytes=1 << 12,
                              compile=compile)
    strat.setup(_diverse_factory(config, seed))
    return strat, (x, y)


def _build_composite_overlap(world, config, seed, rng):
    return _build_composite(world, config, seed, rng, overlap=True)


def _build_composite_compiled(world, config, seed, rng):
    return _build_composite(world, config, seed, rng, compile=True)


def _build_composite_overlap_compiled(world, config, seed, rng):
    return _build_composite(world, config, seed, rng, overlap=True, compile=True)


def _composite_plan(world: int) -> CompositePlan:
    tp, fsdp, tiles, ddp = _COMPOSITE_FACTORS.get(world, (1, 1, 1, world))
    return CompositePlan(VirtualCluster(world), tp=tp, fsdp=fsdp,
                         tiles=tiles, ddp=ddp)


def _build_elastic(world, config, seed, rng, grow=True, compile=False):
    """Composite strategy built at a *different* world, then resharded.

    ``grow`` starts at half the target world (4→8 at world 8), shrink at
    double (8→4 at world 4).  The oracle then drives the resharded
    strategy exactly like a fresh composite — passing means the live
    reshard left no trace.  The compiled variant captures step programs
    at the start world first, so the reshard must also invalidate them
    and replay recaptures at the new world.
    """
    start = max(1, world // 2) if grow else world * 2
    strat = CompositeStrategy(_composite_plan(start), _mse, halo=2, factor=2,
                              bucket_bytes=1 << 12, compile=compile)
    strat.setup(_diverse_factory(config, seed))
    if compile:
        # capture programs at the start world; the reshard must invalidate
        warm_rng = np.random.default_rng(seed + 7)
        wx = warm_rng.standard_normal(
            (strat.plan.ddp, 2, 16, 16)).astype(np.float32)
        wy = warm_rng.standard_normal(
            (strat.plan.ddp, 1, 32, 32)).astype(np.float32)
        strat.forward_backward(wx, wy)
    strat.reshard(_composite_plan(world))
    ddp = strat.plan.ddp
    x = rng.standard_normal((ddp, 2, 16, 16)).astype(np.float32)
    y = rng.standard_normal((ddp, 1, 32, 32)).astype(np.float32)
    return strat, (x, y)


def _build_grow(world, config, seed, rng):
    return _build_elastic(world, config, seed, rng, grow=True)


def _build_shrink(world, config, seed, rng):
    return _build_elastic(world, config, seed, rng, grow=False)


def _build_grow_compiled(world, config, seed, rng):
    return _build_elastic(world, config, seed, rng, grow=True, compile=True)


def _build_tp(world, config, seed, rng):
    d = config.embed_dim
    hidden = int(config.mlp_ratio * d)
    w1 = rng.standard_normal((hidden, d)).astype(np.float32) * 0.3
    b1 = rng.standard_normal(hidden).astype(np.float32)
    w2 = rng.standard_normal((d, hidden)).astype(np.float32) * 0.3
    b2 = rng.standard_normal(d).astype(np.float32)
    x = rng.standard_normal((5, d)).astype(np.float32)
    strat = TensorParallelStrategy(w1, b1, w2, b2)
    strat.setup(None, VirtualCluster(world).world_group())
    return strat, x


def _build_ulysses(world, config, seed, rng):
    heads = config.num_heads
    head_dim = config.embed_dim // heads
    q, k, v = (rng.standard_normal((16, heads, head_dim)).astype(np.float32)
               for _ in range(3))
    strat = UlyssesStrategy(num_heads=heads)
    strat.setup(None, VirtualCluster(world).world_group())
    return strat, (q, k, v)


def _build_hybrid_op(world, config, seed, rng):
    d = config.embed_dim
    hidden = int(config.mlp_ratio * d)
    dims = [d, hidden, d, hidden, d]
    weights = [rng.standard_normal((dims[i + 1], dims[i])).astype(np.float32) * 0.3
               for i in range(len(dims) - 1)]
    x = rng.standard_normal((3, d)).astype(np.float32)
    strat = HybridOpStrategy(weights)
    strat.setup(None, VirtualCluster(world).world_group())
    return strat, x


def _build_pipeline(world, config, seed, rng):
    d = config.embed_dim
    stages = [Linear(d, d, rng=np.random.default_rng(seed + s))
              for s in range(world)]
    x = rng.standard_normal((8, d)).astype(np.float32)
    strat = PipelineStrategy(stages, n_microbatches=4)
    strat.setup(None, VirtualCluster(world).world_group())
    return strat, x


_SPECS: dict[str, OracleSpec] = {
    "ddp": OracleSpec(
        _build_ddp, "gradients averaged by ring all-reduce; float32 chunk order"),
    "fsdp": OracleSpec(
        _build_fsdp,
        "reduce-scatter accumulates in float64; identical contributions → exact"),
    "tp": OracleSpec(
        _build_tp, "forward-only engine: one all-reduce of row-parallel partials"),
    "ulysses": OracleSpec(
        _build_ulysses,
        "per-head attention is rank-local; all-to-alls only permute data"),
    "hybrid_op": OracleSpec(
        _build_hybrid_op,
        "reference runs in float64, so agreement is tolerance-bounded by design"),
    "tiles": OracleSpec(
        _build_tiles, "reference is the serial TiledDownscaler (same tiling, one rank)"),
    "pipeline": OracleSpec(
        _build_pipeline,
        "microbatched stage streaming; reference is unpartitioned execution"),
    "composite": OracleSpec(
        _build_composite,
        "TP×FSDP×TILES×DDP composed; reference is the per-(sample, tile) "
        "float64 gradient mean"),
    "ddp_overlap": OracleSpec(
        _build_ddp_overlap,
        "bucketed async all-reduce with globally aligned ring chunks — "
        "bit-identical to the eager whole-buffer reduction"),
    "fsdp_overlap": OracleSpec(
        _build_fsdp_overlap,
        "per-bucket async reduce-scatter; elementwise float64 reduction "
        "makes any bucket partition exact"),
    "composite_overlap": OracleSpec(
        _build_composite_overlap,
        "phases 1-2 launched bucket-by-bucket under backward; aligned "
        "sub-range all-reduces keep the eager schedule's float32 rounding"),
    "ddp_compiled": OracleSpec(
        _build_ddp_compiled,
        "per-replica CompiledStep replay — bit-identical to the eager "
        "tape walk, so the row matches wherever plain ddp does"),
    "composite_compiled": OracleSpec(
        _build_composite_compiled,
        "per-(sample, tile) CompiledStep replay inside the composite "
        "schedule; reduce phases unchanged"),
    "composite_overlap_compiled": OracleSpec(
        _build_composite_overlap_compiled,
        "compiled replay firing the bucketer's ready-hooks from the "
        "backward program; overlap schedule bit-identical to eager"),
    "grow": OracleSpec(
        _build_grow,
        "composite resharded up from half the world (4→8 at world 8); "
        "the canonical remap is pure slicing, so the grown strategy "
        "matches the reference exactly where fresh composite does"),
    "shrink": OracleSpec(
        _build_shrink,
        "composite resharded down from double the world (8→4 at world "
        "4); FSDP is the shrink axis — float64 reduce-scatter makes the "
        "repartition exact"),
    "grow_compiled": OracleSpec(
        _build_grow_compiled,
        "programs captured at the start world are invalidated by the "
        "reshard; replay recaptures at the new world transparently"),
}


# --------------------------------------------------------------------- #
# the two generic runners
# --------------------------------------------------------------------- #
def _run_forward_only(strategy: ParallelStrategy, data, rtol, atol, ctx):
    return [_compare("output", strategy.forward(data), strategy.reference(data),
                     rtol, atol, ctx)]


def _run_trainable(strategy: ParallelStrategy, data, config, seed, lr,
                   rtol, atol, ctx):
    x, y = data
    ref = _make_model(config, seed)
    comparisons = [
        _compare("output", strategy.forward(x),
                 strategy.reference_forward(ref, x), rtol, atol, ctx)
    ]
    strategy.step(x, y)
    ref_grads = strategy.reference_step(ref, x, y)
    comparisons.append(_compare("gradients", strategy.unit_grads(0),
                                ref_grads, rtol, atol, ctx))
    strategy.apply_sgd(lr)
    _apply_flat_sgd(ref, ref_grads, lr)
    comparisons.append(_compare("params", strategy.unit_params(0),
                                flatten_params(ref), rtol, atol, ctx))
    return comparisons


def check_parallel_equivalence(strategy: str, world: int,
                               config: ModelConfig | None = None,
                               seed: int = 0, lr: float = 0.05,
                               rtol: float | None = None,
                               atol: float | None = None) -> EquivalenceReport:
    """Run one strategy at one world size and compare against single-rank.

    Raises :class:`EquivalenceFailure` on any out-of-tolerance element;
    returns an :class:`EquivalenceReport` whose per-quantity
    ``bit_exact`` flags record where agreement was byte-identical.
    """
    if strategy not in _SPECS:
        raise ValueError(f"unknown strategy {strategy!r}; known: {sorted(_SPECS)}")
    if world < 1:
        raise ValueError("world must be >= 1")
    config = config or oracle_config()
    d_rtol, d_atol = _TOLERANCES[strategy]
    rtol = d_rtol if rtol is None else rtol
    atol = d_atol if atol is None else atol
    spec = _SPECS[strategy]
    rng = np.random.default_rng(seed)
    strat, data = spec.build(world, config, seed, rng)
    ctx = f"{strategy}@world={world}"
    if strat.trainable:
        comparisons = _run_trainable(strat, data, config, seed, lr, rtol, atol, ctx)
    else:
        comparisons = _run_forward_only(strat, data, rtol, atol, ctx)
    return EquivalenceReport(strategy=strategy, world=world,
                             comparisons=comparisons, notes=spec.note)
