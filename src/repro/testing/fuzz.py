"""Seeded property-based fuzzer for the tensor-engine ops.

Samples shapes, broadcast patterns, dtypes (float32 and the bfloat16
grid), and op parameters for every op in ``repro.tensor.functional`` plus
the core ``Tensor`` arithmetic, then cross-checks:

* **forward** values against an independent float64 NumPy reference
  (naive loops for conv, explicit coordinate math for interpolation —
  never the engine's own code path);
* **backward** gradients of ``sum(out * W)`` (random fixed ``W``)
  against central differences of the float64 reference.

Every sample is derived from ``(seed, sample_index)`` alone, so a failure
report pinpoints a reproducible case: re-run ``fuzz_ops(seed=..., only
that op)`` and the exact arrays regenerate.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Sequence

import numpy as np
from scipy import special

from ..tensor import Tensor
from ..tensor import functional as F
from ..tensor.dtypes import DTYPE_BF16, DTYPE_F32, bf16_round
from .gradcheck import numerical_grad_multi

__all__ = [
    "OpSpec",
    "FuzzFailure",
    "FuzzReport",
    "OPS",
    "fuzz_ops",
    "seeded_arrays",
]


# --------------------------------------------------------------------- #
# shape / value sampling
# --------------------------------------------------------------------- #
def _shape(rng: np.random.Generator, ndim_lo=1, ndim_hi=3, dim_hi=5) -> tuple[int, ...]:
    ndim = int(rng.integers(ndim_lo, ndim_hi + 1))
    return tuple(int(rng.integers(1, dim_hi + 1)) for _ in range(ndim))


def _broadcast_partner(rng: np.random.Generator, shape: tuple[int, ...]) -> tuple[int, ...]:
    """A shape that broadcasts against ``shape``: random dims collapsed to
    1 and random leading dims dropped."""
    out = [d if rng.random() < 0.6 else 1 for d in shape]
    drop = int(rng.integers(0, len(out) + 1))
    out = out[drop:]
    return tuple(out) if out else (1,)


def _values(rng: np.random.Generator, shape: tuple[int, ...],
            dtype: str, scale: float = 1.0, offset: float = 0.0) -> np.ndarray:
    x = (rng.standard_normal(shape) * scale + offset).astype(np.float32)
    if dtype == DTYPE_BF16:
        x = bf16_round(x)
    return x


def seeded_arrays(seed: int, n: int, size: int = 256,
                  exponent_range: tuple[int, int] = (-30, 30)
                  ) -> Iterator[np.ndarray]:
    """Deterministic float32 arrays with a wide dynamic range.

    The generator behind the bfloat16 property tests: mantissas from a
    normal distribution scaled by random powers of two, so rounding
    behaviour is exercised across the exponent range rather than only
    near 1.0.
    """
    rng = np.random.default_rng(seed)
    for _ in range(n):
        mant = rng.standard_normal(size)
        expo = rng.integers(exponent_range[0], exponent_range[1], size=size)
        yield (mant * np.exp2(expo.astype(np.float64))).astype(np.float32)


# --------------------------------------------------------------------- #
# float64 references (independent of the engine's code paths)
# --------------------------------------------------------------------- #
def _ref_softmax(x, axis):
    s = x - x.max(axis=axis, keepdims=True)
    e = np.exp(s)
    return e / e.sum(axis=axis, keepdims=True)


def _ref_log_softmax(x, axis):
    s = x - x.max(axis=axis, keepdims=True)
    return s - np.log(np.exp(s).sum(axis=axis, keepdims=True))


def _ref_gelu(x):
    return x * 0.5 * (1.0 + special.erf(x / np.sqrt(2.0)))


def _ref_silu(x):
    return x / (1.0 + np.exp(-x))


def _ref_layernorm(x, w, b, eps=1e-5):
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    return centered / np.sqrt(var + eps) * w + b


def _ref_softmax_xent(x, labels, axis=-1, reduction="mean"):
    logp = _ref_log_softmax(x, axis)
    picked = np.take_along_axis(logp, np.expand_dims(labels, axis), axis)
    total = -picked.sum()
    return total / labels.size if reduction == "mean" else total


def _ref_linear(x, w, b=None):
    out = x @ w.T
    return out if b is None else out + b


def _ref_conv2d(x, w, b, stride, pad):
    n, cin, h, ww = x.shape
    cout, _, k, _ = w.shape
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)))
    oh = (h + 2 * pad - k) // stride + 1
    ow = (ww + 2 * pad - k) // stride + 1
    out = np.zeros((n, cout, oh, ow), dtype=np.float64)
    for i in range(oh):
        for j in range(ow):
            patch = x[:, :, i * stride : i * stride + k, j * stride : j * stride + k]
            out[:, :, i, j] = np.tensordot(patch, w, axes=([1, 2, 3], [1, 2, 3]))
    if b is not None:
        out += b.reshape(1, cout, 1, 1)
    return out


def _ref_avg_pool2d(x, k):
    n, c, h, w = x.shape
    return x.reshape(n, c, h // k, k, w // k, k).mean(axis=(3, 5))


def _ref_pixel_shuffle(x, factor):
    r = factor
    n, crr, h, w = x.shape
    c = crr // (r * r)
    return (x.reshape(n, c, r, r, h, w)
             .transpose(0, 1, 4, 2, 5, 3)
             .reshape(n, c, h * r, w * r))


def _ref_pixel_unshuffle(x, factor):
    r = factor
    n, c, hr, wr = x.shape
    h, w = hr // r, wr // r
    return (x.reshape(n, c, h, r, w, r)
             .transpose(0, 1, 3, 5, 2, 4)
             .reshape(n, c * r * r, h, w))


def _ref_bilinear(x, out_h, out_w):
    """Direct (non-tabulated) bilinear resize, align_corners=False."""
    n, c, h, w = x.shape
    out = np.zeros((n, c, out_h, out_w), dtype=np.float64)
    ys = np.clip((np.arange(out_h) + 0.5) * h / out_h - 0.5, 0.0, h - 1.0)
    xs = np.clip((np.arange(out_w) + 0.5) * w / out_w - 0.5, 0.0, w - 1.0)
    for oi, y in enumerate(ys):
        y0 = int(np.floor(y)); y1 = min(y0 + 1, h - 1); wy = y - y0
        for oj, xx in enumerate(xs):
            x0 = int(np.floor(xx)); x1 = min(x0 + 1, w - 1); wx = xx - x0
            out[:, :, oi, oj] = (
                x[:, :, y0, x0] * (1 - wy) * (1 - wx)
                + x[:, :, y0, x1] * (1 - wy) * wx
                + x[:, :, y1, x0] * wy * (1 - wx)
                + x[:, :, y1, x1] * wy * wx
            )
    return out


def _ref_dropout(x, p, seed):
    rng = np.random.default_rng(seed)
    mask = (rng.random(x.shape) >= p) / (1.0 - p)
    return x * mask


# --------------------------------------------------------------------- #
# op registry
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class OpSpec:
    """One fuzzable op: a sampler, the engine path, a float64 reference."""

    name: str
    #: rng -> (input arrays, kwargs)
    sample: Callable[[np.random.Generator, str], tuple[list[np.ndarray], dict]]
    #: (input Tensors, kwargs) -> output Tensor
    run: Callable[..., Tensor]
    #: (float64 input arrays, kwargs) -> float64 output array
    reference: Callable[..., np.ndarray]
    #: indices of differentiable inputs (backward is checked for these)
    diff_inputs: tuple[int, ...] = (0,)
    fwd_rtol: float = 1e-4
    fwd_atol: float = 1e-5
    grad_rtol: float = 2e-2
    grad_atol: float = 2e-3


def _binary_sampler(offset=0.0, scale=1.0, away_from=None):
    def sample(rng, dtype):
        a_shape = _shape(rng)
        b_shape = _broadcast_partner(rng, a_shape)
        a = _values(rng, a_shape, dtype, scale, offset)
        b = _values(rng, b_shape, dtype, scale, offset)
        if away_from is not None:
            # keep denominators / tie-breaking inputs away from the
            # non-differentiable set
            b = np.where(np.abs(b - away_from) < 0.3,
                         b + np.sign(b - away_from + 1e-6), b).astype(np.float32)
            if dtype == DTYPE_BF16:
                b = bf16_round(b)
        return [a, b], {}
    return sample


def _unary_sampler(scale=1.0, offset=0.0):
    def sample(rng, dtype):
        return [_values(rng, _shape(rng), dtype, scale, offset)], {}
    return sample


def _axis_sampler(rng, dtype):
    x = _values(rng, _shape(rng, ndim_lo=2, ndim_hi=3), dtype)
    axis = int(rng.integers(-1, x.ndim))
    return [x], {"axis": axis}


def _reduce_sampler(rng, dtype):
    x = _values(rng, _shape(rng, ndim_lo=1, ndim_hi=3), dtype)
    axis = int(rng.integers(0, x.ndim)) if rng.random() < 0.7 else None
    keepdims = bool(rng.random() < 0.5)
    return [x], {"axis": axis, "keepdims": keepdims}


def _matmul_sampler(rng, dtype):
    n, k, m = (int(rng.integers(1, 5)) for _ in range(3))
    if rng.random() < 0.4:  # batched left operand broadcasting over a 2-D right
        b = int(rng.integers(1, 4))
        a = _values(rng, (b, n, k), dtype)
    else:
        a = _values(rng, (n, k), dtype)
    w = _values(rng, (k, m), dtype)
    return [a, w], {}


def _conv_sampler(rng, dtype):
    n = int(rng.integers(1, 3))
    cin = int(rng.integers(1, 3))
    cout = int(rng.integers(1, 3))
    k = int(rng.choice([1, 3]))
    stride = int(rng.choice([1, 2]))
    pad = int(rng.choice([0, 1]))
    h = int(rng.integers(k, k + 3))
    w = int(rng.integers(k, k + 3))
    x = _values(rng, (n, cin, h, w), dtype)
    wgt = _values(rng, (cout, cin, k, k), dtype, scale=0.5)
    bias = _values(rng, (cout,), dtype) if rng.random() < 0.5 else None
    arrays = [x, wgt] if bias is None else [x, wgt, bias]
    return arrays, {"stride": stride, "pad": pad}


def _pool_sampler(rng, dtype):
    k = int(rng.choice([1, 2]))
    n, c = int(rng.integers(1, 3)), int(rng.integers(1, 3))
    h = k * int(rng.integers(1, 4))
    w = k * int(rng.integers(1, 4))
    return [_values(rng, (n, c, h, w), dtype)], {"k": k}


def _shuffle_sampler(rng, dtype):
    r = 2
    n, c = 1, int(rng.integers(1, 3))
    h, w = int(rng.integers(1, 4)), int(rng.integers(1, 4))
    return [_values(rng, (n, c * r * r, h, w), dtype)], {"factor": r}


def _unshuffle_sampler(rng, dtype):
    r = 2
    n, c = 1, int(rng.integers(1, 3))
    h, w = r * int(rng.integers(1, 3)), r * int(rng.integers(1, 3))
    return [_values(rng, (n, c, h, w), dtype)], {"factor": r}


def _bilinear_sampler(rng, dtype):
    n, c = 1, int(rng.integers(1, 3))
    h, w = int(rng.integers(2, 5)), int(rng.integers(2, 5))
    out_h = int(rng.integers(2, 2 * h + 1))
    out_w = int(rng.integers(2, 2 * w + 1))
    return [_values(rng, (n, c, h, w), dtype)], {"out_h": out_h, "out_w": out_w}


def _dropout_sampler(rng, dtype):
    x = _values(rng, _shape(rng), dtype)
    p = float(rng.choice([0.0, 0.25, 0.5]))
    seed = int(rng.integers(0, 2**31))
    return [x], {"p": p, "seed": seed}


def _layernorm_sampler(rng, dtype):
    x = _values(rng, _shape(rng, ndim_lo=2, ndim_hi=3), dtype)
    d = x.shape[-1]
    w = _values(rng, (d,), dtype, scale=0.5, offset=1.0)
    b = _values(rng, (d,), dtype, scale=0.5)
    return [x, w, b], {}


def _xent_sampler(rng, dtype):
    # labels are integer indices, not differentiable inputs — they ride in
    # kwargs so _check_sample doesn't wrap them as float Tensors
    n = int(rng.integers(1, 5))
    c = int(rng.integers(2, 6))
    logits = _values(rng, (n, c), dtype, scale=2.0)
    labels = rng.integers(0, c, size=(n,))
    reduction = "mean" if rng.random() < 0.5 else "sum"
    return [logits], {"labels": labels, "reduction": reduction}


def _linear_sampler(rng, dtype):
    in_f, out_f = int(rng.integers(1, 6)), int(rng.integers(1, 6))
    lead = _shape(rng, ndim_lo=0, ndim_hi=2, dim_hi=4)
    x = _values(rng, (*lead, in_f), dtype)
    w = _values(rng, (out_f, in_f), dtype)
    arrays = [x, w]
    if rng.random() < 0.5:
        arrays.append(_values(rng, (out_f,), dtype))
    return arrays, {}


def _add_bias_sampler(rng, dtype):
    shape = _shape(rng, ndim_lo=1, ndim_hi=3)
    x = _values(rng, shape, dtype)
    b = _values(rng, _broadcast_partner(rng, shape), dtype)
    return [x, b], {}


def _conv_run(x, w, b=None, *, stride, pad):
    return F.conv2d(x, w, b, stride=stride, pad=pad)


def _conv_ref(x, w, b=None, *, stride, pad):
    return _ref_conv2d(x, w, b, stride, pad)


OPS: dict[str, OpSpec] = {
    spec.name: spec
    for spec in [
        OpSpec("add", _binary_sampler(), lambda a, b: a + b, lambda a, b: a + b,
               diff_inputs=(0, 1)),
        OpSpec("sub", _binary_sampler(), lambda a, b: a - b, lambda a, b: a - b,
               diff_inputs=(0, 1)),
        OpSpec("mul", _binary_sampler(), lambda a, b: a * b, lambda a, b: a * b,
               diff_inputs=(0, 1)),
        OpSpec("div", _binary_sampler(away_from=0.0), lambda a, b: a / b,
               lambda a, b: a / b, diff_inputs=(0, 1)),
        OpSpec("maximum", _binary_sampler(), lambda a, b: a.maximum(b),
               lambda a, b: np.maximum(a, b), diff_inputs=()),
        OpSpec("matmul", _matmul_sampler, lambda a, b: a @ b,
               lambda a, b: a @ b, diff_inputs=(0, 1)),
        OpSpec("softmax", _axis_sampler, F.softmax, _ref_softmax),
        OpSpec("log_softmax", _axis_sampler, F.log_softmax, _ref_log_softmax),
        OpSpec("gelu", _unary_sampler(), F.gelu, _ref_gelu),
        OpSpec("silu", _unary_sampler(), F.silu, _ref_silu),
        OpSpec("layernorm", _layernorm_sampler, F.layernorm, _ref_layernorm,
               diff_inputs=(0, 1, 2), grad_atol=5e-3),
        OpSpec("softmax_xent", _xent_sampler, F.softmax_cross_entropy,
               _ref_softmax_xent),
        OpSpec("linear", _linear_sampler, F.linear, _ref_linear,
               diff_inputs=(0, 1, 2)),
        OpSpec("add_bias", _add_bias_sampler, F.add_bias,
               lambda a, b: a + b, diff_inputs=(0, 1)),
        OpSpec("sum", _reduce_sampler, Tensor.sum,
               lambda x, axis, keepdims: x.sum(axis=axis, keepdims=keepdims)),
        OpSpec("mean", _reduce_sampler, Tensor.mean,
               lambda x, axis, keepdims: x.mean(axis=axis, keepdims=keepdims)),
        OpSpec("max", _reduce_sampler, Tensor.max,
               lambda x, axis, keepdims: x.max(axis=axis, keepdims=keepdims),
               diff_inputs=()),
        OpSpec("conv2d", _conv_sampler, _conv_run, _conv_ref,
               diff_inputs=(0, 1, 2), fwd_atol=1e-4, grad_atol=5e-3),
        OpSpec("avg_pool2d", _pool_sampler, F.avg_pool2d, _ref_avg_pool2d),
        OpSpec("pixel_shuffle", _shuffle_sampler, F.pixel_shuffle,
               _ref_pixel_shuffle),
        OpSpec("pixel_unshuffle", _unshuffle_sampler, F.pixel_unshuffle,
               _ref_pixel_unshuffle),
        OpSpec("bilinear_upsample", _bilinear_sampler, F.bilinear_upsample,
               _ref_bilinear),
        OpSpec("dropout", _dropout_sampler,
               lambda x, p, seed: F.dropout(x, p, np.random.default_rng(seed)),
               lambda x, p, seed: _ref_dropout(x, p, seed),
               diff_inputs=()),
    ]
}

# max/maximum: subgradient at ties and mask-based backward are exact but
# finite differences straddle the kink, so only the forward is fuzzed;
# dropout's mask is likewise checked forward-only against a same-seed
# reference mask.


# --------------------------------------------------------------------- #
# the fuzz loop
# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FuzzFailure:
    """One forward or backward mismatch, reproducible from (seed, index)."""

    op: str
    sample_index: int
    seed: int
    kind: str                     # 'forward' | 'backward'
    dtype: str
    shapes: tuple[tuple[int, ...], ...]
    max_abs_err: float
    detail: str = ""

    def __str__(self) -> str:
        return (f"[{self.kind}] op={self.op} sample={self.sample_index} "
                f"seed={self.seed} dtype={self.dtype} shapes={self.shapes} "
                f"max_abs_err={self.max_abs_err:.3g} {self.detail}")


@dataclass
class FuzzReport:
    """Outcome of one fuzz sweep."""

    n_samples: int
    seed: int
    per_op: dict[str, int] = field(default_factory=dict)
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures

    def summary(self) -> str:
        ops = ", ".join(f"{k}×{v}" for k, v in sorted(self.per_op.items()))
        head = (f"fuzzed {self.n_samples} samples (seed={self.seed}): "
                f"{len(self.failures)} failure(s)\n  coverage: {ops}")
        if self.failures:
            head += "\n" + "\n".join(f"  {f}" for f in self.failures[:20])
        return head

    def raise_if_failed(self) -> None:
        if self.failures:
            raise AssertionError(self.summary())


def _scalarize(out: np.ndarray, weight: np.ndarray) -> float:
    return float(np.sum(out * weight))


def _check_sample(spec: OpSpec, index: int, seed: int, dtype: str,
                  rng: np.random.Generator, check_backward: bool,
                  max_grad_elems: int) -> list[FuzzFailure]:
    arrays, kwargs = spec.sample(rng, dtype)
    shapes = tuple(a.shape for a in arrays)
    failures: list[FuzzFailure] = []

    tensors = [Tensor(a, requires_grad=True) for a in arrays]
    out = spec.run(*tensors, **kwargs)
    ref = np.asarray(
        spec.reference(*[a.astype(np.float64) for a in arrays], **kwargs)
    )

    if out.data.shape != ref.shape:
        return [FuzzFailure(spec.name, index, seed, "forward", dtype, shapes,
                            float("inf"),
                            f"shape {out.data.shape} != reference {ref.shape}")]
    err = np.abs(out.data.astype(np.float64) - ref)
    bound = spec.fwd_atol + spec.fwd_rtol * np.abs(ref)
    if np.any(err > bound):
        failures.append(FuzzFailure(
            spec.name, index, seed, "forward", dtype, shapes,
            float(err.max()),
            f"{int(np.sum(err > bound))} elements beyond "
            f"rtol={spec.fwd_rtol} atol={spec.fwd_atol}"))

    if not check_backward or not spec.diff_inputs:
        return failures
    diff = [i for i in spec.diff_inputs if i < len(arrays)]
    if not diff or sum(arrays[i].size for i in diff) > max_grad_elems:
        return failures

    weight = rng.standard_normal(out.data.shape).astype(np.float32)
    scalar = (out * Tensor(weight)).sum()
    scalar.backward()

    def f(*probe):
        full = list(probe)
        return _scalarize(
            np.asarray(spec.reference(*full, **kwargs)),
            weight.astype(np.float64))

    numeric = numerical_grad_multi(f, arrays, eps=1e-3, wrt=diff)
    for i in diff:
        analytic = tensors[i].grad
        if analytic is None:
            analytic = np.zeros_like(arrays[i])
        a64 = analytic.astype(np.float64)
        n64 = numeric[i]
        gerr = np.abs(a64 - n64)
        gbound = spec.grad_atol + spec.grad_rtol * np.abs(n64)
        if np.any(gerr > gbound):
            failures.append(FuzzFailure(
                spec.name, index, seed, "backward", dtype, shapes,
                float(gerr.max()),
                f"input {i}: {int(np.sum(gerr > gbound))} elements beyond "
                f"rtol={spec.grad_rtol} atol={spec.grad_atol}"))
    return failures


def fuzz_ops(n_samples: int = 200, seed: int = 0,
             ops: Sequence[str] | None = None, check_backward: bool = True,
             bf16_fraction: float = 0.2, max_grad_elems: int = 96) -> FuzzReport:
    """Run a seeded fuzz sweep over the op registry.

    Each sample draws its own generator from ``(seed, index)`` so any
    failure is reproducible in isolation.  ``bf16_fraction`` of samples
    snap their inputs to the bfloat16 grid (the engine still computes in
    float32 — what changes is the input lattice, which is exactly how the
    mixed-precision trainer feeds ops).  Inputs with more than
    ``max_grad_elems`` elements skip the (O(n) probe) backward check.
    """
    names = list(OPS) if ops is None else list(ops)
    unknown = set(names) - set(OPS)
    if unknown:
        raise ValueError(f"unknown ops {sorted(unknown)}; known: {sorted(OPS)}")
    report = FuzzReport(n_samples=n_samples, seed=seed)
    for i in range(n_samples):
        sample_seed = seed * 1_000_003 + i
        rng = np.random.default_rng(sample_seed)
        spec = OPS[names[int(rng.integers(0, len(names)))]]
        dtype = DTYPE_BF16 if rng.random() < bf16_fraction else DTYPE_F32
        report.per_op[spec.name] = report.per_op.get(spec.name, 0) + 1
        report.failures.extend(
            _check_sample(spec, i, sample_seed, dtype, rng,
                          check_backward, max_grad_elems))
    return report
