"""Golden-file regression harness.

Benchmark tables under ``benchmarks/results/`` used to be write-only
logs: a regression in a modelled speedup or an eval metric changed the
numbers and nobody noticed.  :func:`check_golden` turns any rendered text
artifact into a regression check:

* first run **creates** the golden copy and passes;
* later runs compare — the non-numeric *structure* (headers, labels,
  row layout) must match exactly, and every embedded number must agree
  with its golden counterpart within ``rtol``/``atol``;
* ``--update-golden`` on the command line (or ``REPRO_UPDATE_GOLDEN=1``
  in the environment) rewrites the golden copy instead of comparing.

Tolerances default to *loose* (``rtol=0.5``) because benchmark tables
embed wall-clock timings that legitimately vary run to run; callers
checking pure-math artifacts should pass tight tolerances explicitly.
"""

from __future__ import annotations

import os
import re
import sys
from pathlib import Path

__all__ = [
    "GoldenMismatch",
    "extract_numbers",
    "structure_of",
    "update_requested",
    "check_golden",
]

_NUMBER = re.compile(r"[-+]?\d+\.?\d*(?:[eE][-+]?\d+)?")
_PLACEHOLDER = "<num>"


class GoldenMismatch(AssertionError):
    """A rendered artifact disagreed with its golden copy."""


def extract_numbers(text: str) -> list[float]:
    """All numeric literals in the text, in reading order."""
    return [float(m) for m in _NUMBER.findall(text)]


def structure_of(text: str) -> str:
    """The text with every numeric literal replaced by a placeholder.

    Two artifacts with the same structure differ only in their numbers —
    which is exactly what tolerance comparison is for.
    """
    return _NUMBER.sub(_PLACEHOLDER, text)


def update_requested(argv: list[str] | None = None) -> bool:
    """True when the caller asked goldens to be rewritten, via the
    ``--update-golden`` flag or ``REPRO_UPDATE_GOLDEN=1``."""
    argv = sys.argv if argv is None else argv
    if "--update-golden" in argv:
        return True
    return os.environ.get("REPRO_UPDATE_GOLDEN", "") not in ("", "0")


def check_golden(name: str, text: str, golden_dir: str | Path,
                 rtol: float = 0.5, atol: float = 1e-9,
                 argv: list[str] | None = None) -> str:
    """Compare rendered ``text`` against ``golden_dir/name.golden``.

    Returns one of ``'created'`` (no golden existed — it does now),
    ``'updated'`` (rewrite was requested), or ``'checked'`` (compared and
    passed).  Raises :class:`GoldenMismatch` on structural divergence, a
    changed number count, or any number outside
    ``atol + rtol * |golden|``.
    """
    golden_dir = Path(golden_dir)
    golden_path = golden_dir / f"{name}.golden"
    if update_requested(argv):
        golden_dir.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(text)
        return "updated"
    if not golden_path.exists():
        golden_dir.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(text)
        return "created"

    golden_text = golden_path.read_text()
    if structure_of(text) != structure_of(golden_text):
        raise GoldenMismatch(
            f"{name}: artifact structure changed relative to {golden_path} "
            f"(labels/layout differ, not just numbers); rerun with "
            f"--update-golden if intentional)")
    new = extract_numbers(text)
    old = extract_numbers(golden_text)
    if len(new) != len(old):  # unreachable given equal structure; belt+braces
        raise GoldenMismatch(
            f"{name}: {len(new)} numbers vs {len(old)} in the golden copy")
    for i, (a, b) in enumerate(zip(new, old)):
        if abs(a - b) > atol + rtol * abs(b):
            raise GoldenMismatch(
                f"{name}: number #{i} drifted: {a!r} vs golden {b!r} "
                f"(rtol={rtol}, atol={atol}); rerun with --update-golden "
                f"if intentional")
    return "checked"
