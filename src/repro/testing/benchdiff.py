"""Benchmark regression diffing: fresh BENCH JSON vs the committed one.

Every benchmark in ``benchmarks/`` writes a ``BENCH_*.json`` document at
the repo root.  :func:`diff_docs` walks two such documents (any nesting
of dicts/lists) and classifies every leaf-level change:

* **regression** — a time-like metric got slower beyond tolerance, a
  boolean invariant flipped from true to false, or a metric disappeared;
* **drift** — a numeric value moved beyond tolerance in a direction we
  don't score (counts, sizes, improvements on timings);
* **added** — a new metric appeared (informational).

Direction is inferred from the leaf key: names ending in ``_s`` or
containing ``overhead``/``downtime``/``latency`` are wall-time-like, so
only increases count against them.  Counts and other numbers have no
universal "better", so they can only drift.  Wall timings are noisy —
the default tolerance is deliberately loose (``rtol=0.5``) and CI passes
its own; the hard performance gates stay in-process inside each
benchmark (A/B ratios are robust where absolute timings are not).

``repro bench-diff OLD NEW`` renders the classified deltas and exits
nonzero iff any regression was found (``--strict`` also fails drift).
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass
from pathlib import Path

__all__ = ["MetricDelta", "diff_docs", "diff_files", "render_deltas"]

#: leaf-key fragments that mark a metric as "lower is better"
_TIME_HINTS = ("overhead", "downtime", "latency")


def _is_timing(key: str) -> bool:
    k = key.lower()
    return k.endswith("_s") or any(h in k for h in _TIME_HINTS)


@dataclass(frozen=True)
class MetricDelta:
    """One classified leaf-level change between two benchmark documents."""

    path: str            # dotted path, list indices in brackets
    old: object
    new: object
    status: str          # "regression" | "drift" | "added" | "removed"

    @property
    def is_regression(self) -> bool:
        return self.status in ("regression", "removed")

    def describe(self) -> str:
        if self.status == "added":
            return f"+ {self.path} = {self.new!r} (new metric)"
        if self.status == "removed":
            return f"- {self.path} (was {self.old!r}, gone)"
        arrow = f"{self.old!r} -> {self.new!r}"
        if (isinstance(self.old, (int, float)) and self.old
                and isinstance(self.new, (int, float))
                and not isinstance(self.old, bool)
                and not isinstance(self.new, bool)):
            arrow += f" ({(self.new - self.old) / abs(self.old):+.1%})"
        tag = "REGRESSION" if self.status == "regression" else "drift"
        return f"! {self.path}: {arrow} [{tag}]"


def _leaf_delta(path: str, key: str, old, new, rtol: float,
                atol: float) -> MetricDelta | None:
    if isinstance(old, bool) or isinstance(new, bool):
        if old == new:
            return None
        status = "regression" if old is True else "drift"
        return MetricDelta(path, old, new, status)
    if isinstance(old, (int, float)) and isinstance(new, (int, float)):
        if old == new:
            return None
        if not (math.isfinite(old) and math.isfinite(new)):
            return MetricDelta(path, old, new, "regression")
        if abs(new - old) <= atol + rtol * abs(old):
            return None
        if _is_timing(key) and new > old:
            return MetricDelta(path, old, new, "regression")
        return MetricDelta(path, old, new, "drift")
    if old != new:
        return MetricDelta(path, old, new, "drift")
    return None


def diff_docs(old, new, *, rtol: float = 0.5,
              atol: float = 1e-9) -> list[MetricDelta]:
    """Classified leaf differences between two benchmark documents."""
    out: list[MetricDelta] = []
    _walk(old, new, "", "", rtol, atol, out)
    return out


def _walk(old, new, path: str, key: str, rtol: float, atol: float,
          out: list[MetricDelta]) -> None:
    if isinstance(old, dict) and isinstance(new, dict):
        for k in sorted(old.keys() | new.keys()):
            sub = f"{path}.{k}" if path else str(k)
            if k not in new:
                out.append(MetricDelta(sub, old[k], None, "removed"))
            elif k not in old:
                out.append(MetricDelta(sub, None, new[k], "added"))
            else:
                _walk(old[k], new[k], sub, str(k), rtol, atol, out)
        return
    if isinstance(old, list) and isinstance(new, list):
        for i in range(max(len(old), len(new))):
            sub = f"{path}[{i}]"
            if i >= len(new):
                out.append(MetricDelta(sub, old[i], None, "removed"))
            elif i >= len(old):
                out.append(MetricDelta(sub, None, new[i], "added"))
            else:
                _walk(old[i], new[i], sub, key, rtol, atol, out)
        return
    delta = _leaf_delta(path, key, old, new, rtol, atol)
    if delta is not None:
        out.append(delta)


def diff_files(old_path, new_path, *, rtol: float = 0.5,
               atol: float = 1e-9) -> list[MetricDelta]:
    """:func:`diff_docs` over two JSON files on disk."""
    old = json.loads(Path(old_path).read_text())
    new = json.loads(Path(new_path).read_text())
    return diff_docs(old, new, rtol=rtol, atol=atol)


def render_deltas(deltas: list[MetricDelta], *, old_name: str = "old",
                  new_name: str = "new") -> str:
    """Human-readable report; one line per change plus a verdict line."""
    lines = [f"bench-diff: {old_name} -> {new_name}"]
    if not deltas:
        lines.append("  no changes beyond tolerance")
    for d in deltas:
        lines.append("  " + d.describe())
    regressions = sum(d.is_regression for d in deltas)
    drift = sum(d.status == "drift" for d in deltas)
    added = sum(d.status == "added" for d in deltas)
    lines.append(f"  {regressions} regression(s), {drift} drifted, "
                 f"{added} added")
    return "\n".join(lines)
