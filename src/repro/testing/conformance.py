"""Collective-conformance oracle for the simulated communicator.

Every ``ProcessGroup`` collective is validated two ways:

* **values** — against a naive float64 NumPy reference (literal sum /
  concatenate / slice semantics, no ring algorithm), so the ring
  reduce-scatter + all-gather implementation is checked for correctness
  independent of its own chunking arithmetic;
* **accounting** — the ``sent_bytes_per_rank`` each call records must
  equal the analytic volume formulas that ``distributed/perf_model.py``
  prices, byte for byte.  If an implementation change altered real
  traffic without updating the formula (or vice versa), the performance
  tables would silently drift from the simulation.

Ring algorithms commonly break off the power-of-two path, so the default
sweep includes odd world sizes and ragged (prime-dimensioned,
non-contiguous-friendly) buffer shapes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..distributed import ProcessGroup

__all__ = [
    "COLLECTIVES",
    "ASYNC_COLLECTIVES",
    "CollectiveResult",
    "ConformanceReport",
    "ConformanceFailure",
    "expected_sent_bytes",
    "check_collective",
    "check_async_collective",
    "run_conformance",
    "run_async_conformance",
]

#: Every collective the communicator implements.
COLLECTIVES: tuple[str, ...] = (
    "all_reduce", "all_gather", "reduce_scatter", "broadcast", "all_to_all",
)

#: World sizes for the default sweep — primes 3/5/7 exercise the
#: non-power-of-two ring paths.
DEFAULT_WORLDS: tuple[int, ...] = (1, 2, 3, 4, 5, 7, 8)

#: Collectives with an async (``Work``-handle) variant.
ASYNC_COLLECTIVES: tuple[str, ...] = (
    "all_reduce", "reduce_scatter", "all_gather",
)

#: float32 ring reductions reorder additions; everything else is a copy.
_VALUE_TOLERANCES: dict[str, tuple[float, float]] = {
    "all_reduce": (1e-5, 1e-6),
    "all_gather": (0.0, 0.0),
    "reduce_scatter": (1e-6, 1e-7),
    "broadcast": (0.0, 0.0),
    "all_to_all": (0.0, 0.0),
}


class ConformanceFailure(AssertionError):
    """A collective disagreed with the reference or the byte formula."""


def expected_sent_bytes(op: str, world: int, buffer_nbytes: int) -> float:
    """Analytic bytes each rank sends for one collective call.

    These are the canonical ring/tree volumes the performance model uses
    (``ProcessGroup.collective_time`` prices the same expressions):
    ring all-reduce ``2(P-1)/P·n``; ring all-gather ``(P-1)·n`` with *n*
    the per-rank shard; reduce-scatter and pairwise all-to-all
    ``(P-1)/P·n``; binomial-tree broadcast ``n·log2(max(P,2))/P``
    amortised over the group.
    """
    p = world
    n = buffer_nbytes
    if op == "all_reduce":
        return 2 * (p - 1) / p * n
    if op == "all_gather":
        return (p - 1) * n
    if op in ("reduce_scatter", "all_to_all"):
        return (p - 1) / p * n
    if op == "broadcast":
        return n * float(np.log2(max(p, 2))) / p
    raise ValueError(f"unknown collective {op!r}; known: {sorted(COLLECTIVES)}")


# --------------------------------------------------------------------- #
# naive float64 references — literal semantics, no ring algorithm
# --------------------------------------------------------------------- #
def _reference(op: str, buffers: list[np.ndarray], world: int) -> list[np.ndarray]:
    xs = [b.astype(np.float64) for b in buffers]
    if op == "all_reduce":  # mean, matching the engines' default
        mean = np.sum(xs, axis=0) / world
        return [mean.copy() for _ in range(world)]
    if op == "all_gather":
        full = np.concatenate(xs, axis=0)
        return [full.copy() for _ in range(world)]
    if op == "reduce_scatter":  # sum, the ProcessGroup default
        total = np.sum(xs, axis=0)
        return [s.copy() for s in np.array_split(total, world, axis=0)]
    if op == "broadcast":
        return [xs[0].copy() for _ in range(world)]
    if op == "all_to_all":
        split = [np.array_split(x, world, axis=0) for x in xs]
        return [np.concatenate([split[j][i] for j in range(world)], axis=0)
                for i in range(world)]
    raise ValueError(f"unknown collective {op!r}")


def _invoke(group: ProcessGroup, op: str, buffers: list[np.ndarray]) -> list[np.ndarray]:
    if op == "all_reduce":
        return group.all_reduce(buffers, op="mean")
    if op == "all_gather":
        return group.all_gather(buffers)
    if op == "reduce_scatter":
        return group.reduce_scatter(buffers, op="sum")
    if op == "broadcast":
        return group.broadcast(buffers[0])
    if op == "all_to_all":
        return group.all_to_all(buffers)
    raise ValueError(f"unknown collective {op!r}")


def _sweep_shapes(op: str, world: int, rng: np.random.Generator
                  ) -> list[tuple[int, ...]]:
    """Ragged default shapes: primes and mixed ranks, nothing aligned to
    the world size except where the collective's contract demands it."""
    if op in ("reduce_scatter", "all_to_all"):
        # contract: leading dim divisible by world — scale odd multiples
        return [(world * 1,), (world * 3,), (world * 2, 3), (world, 5, 2)]
    return [(1,), (37,), (5, 3), (2, 3, 5)]


@dataclass(frozen=True)
class CollectiveResult:
    """One (collective, world, shape) conformance check."""

    op: str
    world: int
    shape: tuple[int, ...]
    max_abs_err: float
    recorded_bytes: float
    expected_bytes: float


@dataclass
class ConformanceReport:
    results: list[CollectiveResult] = field(default_factory=list)

    @property
    def checks(self) -> int:
        return len(self.results)

    def summary(self) -> str:
        ops = sorted({r.op for r in self.results})
        worlds = sorted({r.world for r in self.results})
        worst = max((r.max_abs_err for r in self.results), default=0.0)
        return (f"{self.checks} conformance checks over ops={ops} "
                f"worlds={worlds}; worst value error {worst:.3g}")


def check_collective(op: str, world: int, shape: Sequence[int],
                     seed: int = 0) -> CollectiveResult:
    """Validate one collective call's values and byte accounting.

    Raises :class:`ConformanceFailure` if any rank's output strays from
    the naive reference beyond the op's tolerance, or if the recorded
    ``sent_bytes_per_rank`` differs from :func:`expected_sent_bytes`.
    """
    if op not in COLLECTIVES:
        raise ValueError(f"unknown collective {op!r}; known: {sorted(COLLECTIVES)}")
    rng = np.random.default_rng(seed)
    shape = tuple(int(s) for s in shape)
    buffers = [rng.standard_normal(shape).astype(np.float32) for _ in range(world)]
    group = ProcessGroup(list(range(world)))
    outs = _invoke(group, op, buffers)
    refs = _reference(op, buffers, world)
    ctx = f"{op}@world={world} shape={shape}"

    if len(outs) != world:
        raise ConformanceFailure(f"{ctx}: {len(outs)} outputs for {world} ranks")
    rtol, atol = _VALUE_TOLERANCES[op]
    max_err = 0.0
    for rank, (got, ref) in enumerate(zip(outs, refs)):
        if got.shape != ref.shape:
            raise ConformanceFailure(
                f"{ctx}: rank {rank} output shape {got.shape} != {ref.shape}")
        err = np.abs(got.astype(np.float64) - ref)
        if np.any(err > atol + rtol * np.abs(ref)):
            raise ConformanceFailure(
                f"{ctx}: rank {rank} value mismatch, max_abs_err={err.max():.3g} "
                f"(rtol={rtol} atol={atol})")
        max_err = max(max_err, float(err.max()) if err.size else 0.0)

    recorded = group.stats.bytes_per_rank.get(op, 0.0)
    expected = expected_sent_bytes(op, world, buffers[0].nbytes)
    if not np.isclose(recorded, expected, rtol=1e-12, atol=1e-9):
        raise ConformanceFailure(
            f"{ctx}: recorded sent_bytes_per_rank {recorded} != analytic {expected}")
    if group.stats.calls.get(op, 0) != 1:
        raise ConformanceFailure(
            f"{ctx}: expected exactly one recorded {op} call, "
            f"got {group.stats.calls.get(op, 0)}")
    return CollectiveResult(op, world, shape, max_err, recorded, expected)


def _invoke_async(group: ProcessGroup, op: str, buffers: list[np.ndarray]):
    if op == "all_reduce":
        return group.all_reduce_async(buffers, op="mean")
    if op == "reduce_scatter":
        return group.reduce_scatter_async(buffers, op="sum")
    if op == "all_gather":
        return group.all_gather_async(buffers)
    raise ValueError(f"collective {op!r} has no async variant; "
                     f"known: {sorted(ASYNC_COLLECTIVES)}")


def check_async_collective(op: str, world: int, shape: Sequence[int],
                           seed: int = 0) -> CollectiveResult:
    """Validate one async collective against its sync twin.

    The contract is strict bit-identity, not a tolerance: the async
    launch runs the *same* reduction math as the sync path, so
    ``wait()``'s results must equal the sync outputs array-for-array,
    the recorded ``sent_bytes_per_rank`` must match byte for byte, and
    the launch must be counted in both ``calls`` and
    ``async_launches``.  Raises :class:`ConformanceFailure` otherwise.
    """
    if op not in ASYNC_COLLECTIVES:
        raise ValueError(f"collective {op!r} has no async variant; "
                         f"known: {sorted(ASYNC_COLLECTIVES)}")
    rng = np.random.default_rng(seed)
    shape = tuple(int(s) for s in shape)
    buffers = [rng.standard_normal(shape).astype(np.float32) for _ in range(world)]
    ctx = f"{op}_async@world={world} shape={shape}"

    sync_group = ProcessGroup(list(range(world)))
    sync_outs = _invoke(sync_group, op, [b.copy() for b in buffers])
    async_group = ProcessGroup(list(range(world)))
    work = _invoke_async(async_group, op, [b.copy() for b in buffers])
    async_outs = work.wait()
    again = work.wait()  # wait() must be idempotent

    if len(async_outs) != len(sync_outs):
        raise ConformanceFailure(
            f"{ctx}: {len(async_outs)} async outputs vs {len(sync_outs)} sync")
    for rank, (got, ref, rep) in enumerate(zip(async_outs, sync_outs, again)):
        if not np.array_equal(got, ref):
            raise ConformanceFailure(
                f"{ctx}: rank {rank} async result is not bit-identical to sync")
        if rep is not got:
            raise ConformanceFailure(
                f"{ctx}: rank {rank} second wait() returned different objects")
    recorded = async_group.stats.bytes_per_rank.get(op, 0.0)
    expected = sync_group.stats.bytes_per_rank.get(op, 0.0)
    if recorded != expected:
        raise ConformanceFailure(
            f"{ctx}: async sent_bytes_per_rank {recorded} != sync {expected}")
    if async_group.stats.calls.get(op, 0) != 1:
        raise ConformanceFailure(
            f"{ctx}: expected exactly one recorded {op} call, "
            f"got {async_group.stats.calls.get(op, 0)}")
    if async_group.stats.async_launches.get(op, 0) != 1:
        raise ConformanceFailure(
            f"{ctx}: expected exactly one async launch, "
            f"got {async_group.stats.async_launches.get(op, 0)}")
    max_err = max((float(np.abs(g.astype(np.float64) - r.astype(np.float64)).max())
                   for g, r in zip(async_outs, sync_outs) if g.size), default=0.0)
    return CollectiveResult(op, world, shape, max_err, recorded,
                            expected_sent_bytes(op, world, buffers[0].nbytes))


def run_async_conformance(worlds: Sequence[int] = DEFAULT_WORLDS,
                          ops: Sequence[str] = ASYNC_COLLECTIVES,
                          seed: int = 0) -> ConformanceReport:
    """Sweep async == sync bit-identity over every (op, world, shape).

    The default worlds include the odd sizes (3, 5, 7) where ring-chunk
    arithmetic is raggedest.  Raises :class:`ConformanceFailure` at the
    first disagreeing combination.
    """
    unknown = set(ops) - set(ASYNC_COLLECTIVES)
    if unknown:
        raise ValueError(f"collectives with no async variant: {sorted(unknown)}")
    rng = np.random.default_rng(seed)
    report = ConformanceReport()
    for op in ops:
        for world in worlds:
            for shape in _sweep_shapes(op, world, rng):
                report.results.append(
                    check_async_collective(op, world, shape,
                                           seed=seed + 7919 * len(report.results)))
    return report


def run_conformance(worlds: Sequence[int] = DEFAULT_WORLDS,
                    ops: Sequence[str] = COLLECTIVES,
                    seed: int = 0) -> ConformanceReport:
    """Sweep every (op, world, ragged shape) combination.

    Returns the report on full success; raises
    :class:`ConformanceFailure` at the first failing combination.
    """
    unknown = set(ops) - set(COLLECTIVES)
    if unknown:
        raise ValueError(f"unknown ops {sorted(unknown)}")
    rng = np.random.default_rng(seed)
    report = ConformanceReport()
    for op in ops:
        for world in worlds:
            for shape in _sweep_shapes(op, world, rng):
                report.results.append(
                    check_collective(op, world, shape,
                                     seed=seed + 7919 * len(report.results)))
    return report
