"""Finite-difference gradient oracle.

Promoted from the original ``tests/gradcheck.py`` helper into a
library-grade checker any PR can call to prove a new op's backward pass:

* central differences probed in float64 so truncation error stays far
  below the comparison tolerance even though the engine runs float32;
* multi-input functions (``check_gradients`` differentiates with respect
  to every input, or a chosen subset);
* dtype-aware default tolerances (bfloat16's 8-bit mantissa needs much
  looser bounds than float32);
* per-element failure reports: a mismatch raises :class:`GradcheckFailure`
  listing the worst offending elements with their indices, analytic and
  numeric values, and errors — not just ``assert_allclose``'s summary;
* an optional vectorised probe mode for functions that map a stacked
  leading axis independently (one call evaluates all 2·n probes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from ..tensor import Tensor

__all__ = [
    "GradcheckFailure",
    "ElementMismatch",
    "default_tolerances",
    "numerical_grad",
    "numerical_grad_multi",
    "check_gradient",
    "check_gradients",
]

#: (rtol, atol) pairs keyed by the logical dtype of the computation under
#: test.  float32 matches the legacy checker; bfloat16 reflects its 2^-8
#: unit roundoff.
_DTYPE_TOLERANCES: dict[str, tuple[float, float]] = {
    "float32": (2e-2, 2e-3),
    "bfloat16": (8e-2, 2e-2),
    "float64": (1e-5, 1e-7),
}


def default_tolerances(dtype: str = "float32") -> tuple[float, float]:
    """(rtol, atol) appropriate for gradients computed in ``dtype``."""
    try:
        return _DTYPE_TOLERANCES[dtype]
    except KeyError:
        raise ValueError(
            f"no default tolerances for dtype {dtype!r}; "
            f"known: {sorted(_DTYPE_TOLERANCES)}"
        ) from None


@dataclass(frozen=True)
class ElementMismatch:
    """One failing element of a gradient comparison."""

    input_index: int
    index: tuple[int, ...]
    analytic: float
    numeric: float

    @property
    def abs_err(self) -> float:
        return abs(self.analytic - self.numeric)

    @property
    def rel_err(self) -> float:
        return self.abs_err / max(abs(self.numeric), 1e-30)

    def __str__(self) -> str:
        return (
            f"input[{self.input_index}]{list(self.index)}: "
            f"analytic={self.analytic:.6g} numeric={self.numeric:.6g} "
            f"abs={self.abs_err:.3g} rel={self.rel_err:.3g}"
        )


class GradcheckFailure(AssertionError):
    """Gradient mismatch carrying a per-element report."""

    def __init__(self, message: str, mismatches: list[ElementMismatch]):
        super().__init__(message)
        self.mismatches = mismatches


def numerical_grad(fn, x: np.ndarray, eps: float = 1e-3,
                   batched: bool = False) -> np.ndarray:
    """Central-difference gradient of scalar-valued ``fn`` at ``x``.

    ``fn`` takes a float64 array and returns a float scalar.  With
    ``batched=True``, ``fn`` must instead accept a stacked array of shape
    ``(2n, *x.shape)`` and return one scalar per leading slice (shape
    ``(2n,)``) — all probes are then evaluated in a single call.
    """
    x = np.asarray(x, dtype=np.float64)
    n = x.size
    if batched:
        eye = np.eye(n, dtype=np.float64).reshape((n,) + x.shape)
        probes = np.concatenate([x[None] + eps * eye, x[None] - eps * eye])
        vals = np.asarray(fn(probes), dtype=np.float64).reshape(2 * n)
        return ((vals[:n] - vals[n:]) / (2 * eps)).reshape(x.shape)
    grad = np.zeros_like(x)
    flat = x.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(n):
        orig = flat[i]
        flat[i] = orig + eps
        fp = fn(x)
        flat[i] = orig - eps
        fm = fn(x)
        flat[i] = orig
        gflat[i] = (fp - fm) / (2 * eps)
    return grad


def numerical_grad_multi(fn, xs: Sequence[np.ndarray], eps: float = 1e-3,
                         wrt: Sequence[int] | None = None) -> list[np.ndarray | None]:
    """Central-difference gradients of ``fn(*xs)`` w.r.t. each input.

    ``fn`` maps float64 arrays to a float scalar.  Returns one gradient
    per input, ``None`` for inputs not in ``wrt``.
    """
    xs = [np.asarray(x, dtype=np.float64) for x in xs]
    which = set(range(len(xs))) if wrt is None else set(wrt)
    grads: list[np.ndarray | None] = []
    for i, x in enumerate(xs):
        if i not in which:
            grads.append(None)
            continue

        def fi(arr, _i=i):
            probe = list(xs)
            probe[_i] = arr
            return fn(*probe)

        grads.append(numerical_grad(fi, x, eps=eps))
    return grads


def _collect_mismatches(input_index: int, analytic: np.ndarray,
                        numeric: np.ndarray, rtol: float, atol: float,
                        max_report: int) -> list[ElementMismatch]:
    bad = np.abs(analytic - numeric) > atol + rtol * np.abs(numeric)
    if not np.any(bad):
        return []
    err = np.abs(analytic - numeric) * bad
    order = np.argsort(err, axis=None)[::-1]
    out = []
    for flat_idx in order[:max_report]:
        if not bad.reshape(-1)[flat_idx]:
            break
        idx = np.unravel_index(flat_idx, analytic.shape)
        out.append(ElementMismatch(
            input_index=input_index,
            index=tuple(int(i) for i in idx),
            analytic=float(analytic[idx]),
            numeric=float(numeric[idx]),
        ))
    return out


def check_gradients(build_scalar: Callable[..., Tensor],
                    inputs: Sequence[np.ndarray],
                    rtol: float | None = None, atol: float | None = None,
                    dtype: str = "float32", eps: float = 1e-3,
                    wrt: Sequence[int] | None = None,
                    max_report: int = 8) -> None:
    """Assert autograd gradients of a multi-input function match finite
    differences.

    ``build_scalar`` maps one Tensor per entry of ``inputs`` to a scalar
    Tensor.  Gradients are checked for every input (or the ``wrt``
    subset).  Tolerances default to :func:`default_tolerances` for
    ``dtype``.  Raises :class:`GradcheckFailure` with the worst
    ``max_report`` offending elements on mismatch.
    """
    d_rtol, d_atol = default_tolerances(dtype)
    rtol = d_rtol if rtol is None else rtol
    atol = d_atol if atol is None else atol

    tensors = [Tensor(np.asarray(x, dtype=np.float32), requires_grad=True)
               for x in inputs]
    out = build_scalar(*tensors)
    out.backward()
    which = set(range(len(tensors))) if wrt is None else set(wrt)
    analytic = [
        (t.grad if t.grad is not None else np.zeros_like(t.data)).astype(np.float64)
        if i in which else None
        for i, t in enumerate(tensors)
    ]

    def f(*arrays):
        ts = [Tensor(a.astype(np.float32)) for a in arrays]
        return float(build_scalar(*ts).data)

    numeric = numerical_grad_multi(f, [np.asarray(x) for x in inputs],
                                   eps=eps, wrt=sorted(which))
    mismatches: list[ElementMismatch] = []
    for i, (a, n) in enumerate(zip(analytic, numeric)):
        if a is None or n is None:
            continue
        if a.shape != n.shape:
            raise GradcheckFailure(
                f"input[{i}]: analytic gradient shape {a.shape} != input "
                f"shape {n.shape} — the backward fn mis-broadcasts", [])
        mismatches.extend(_collect_mismatches(i, a, n, rtol, atol, max_report))
    if mismatches:
        lines = [
            f"gradient mismatch ({len(mismatches)}+ elements beyond "
            f"rtol={rtol} atol={atol}, dtype={dtype}):"
        ] + [f"  {m}" for m in mismatches[:max_report]]
        raise GradcheckFailure("\n".join(lines), mismatches)


def check_gradient(build_scalar, x0: np.ndarray,
                   rtol: float = 2e-2, atol: float = 2e-3) -> None:
    """Single-input convenience wrapper (the original test-helper API).

    ``build_scalar`` maps a Tensor to a scalar Tensor.  Raises
    :class:`GradcheckFailure` with a readable per-element diff on mismatch.
    """
    check_gradients(build_scalar, [x0], rtol=rtol, atol=atol)
