"""``repro.testing`` — the verification layer.

Library-grade oracles any PR can call to prove it kept the numerics:

* :mod:`~repro.testing.gradcheck` — central-difference gradient checking
  with dtype-aware tolerances and per-element failure reports;
* :mod:`~repro.testing.equivalence` — parallel-equivalence oracle: every
  simulated-cluster parallelism vs its single-rank reference;
* :mod:`~repro.testing.fuzz` — seeded property-based fuzzing of the
  tensor-engine ops against independent float64 references;
* :mod:`~repro.testing.conformance` — collective value + byte-accounting
  conformance for the simulated communicator;
* :mod:`~repro.testing.golden` — golden-file regression checks for
  rendered artifacts (benchmark tables);
* :mod:`~repro.testing.benchdiff` — per-metric diffs of fresh
  ``BENCH_*.json`` documents against the committed ones, with
  regression classification (behind ``repro bench-diff``).

See DESIGN.md's "Verification layer" section for the guarantees each
oracle provides and how to wire one into a new test.
"""

from .conformance import (
    ASYNC_COLLECTIVES,
    COLLECTIVES,
    CollectiveResult,
    ConformanceFailure,
    ConformanceReport,
    check_async_collective,
    check_collective,
    expected_sent_bytes,
    run_async_conformance,
    run_conformance,
)
from .equivalence import (
    PARALLELISMS,
    Comparison,
    EquivalenceFailure,
    EquivalenceReport,
    check_parallel_equivalence,
    oracle_config,
)
from .benchdiff import MetricDelta, diff_docs, diff_files, render_deltas
from .fuzz import OPS, FuzzFailure, FuzzReport, OpSpec, fuzz_ops, seeded_arrays
from .golden import (
    GoldenMismatch,
    check_golden,
    extract_numbers,
    structure_of,
    update_requested,
)
from .gradcheck import (
    ElementMismatch,
    GradcheckFailure,
    check_gradient,
    check_gradients,
    default_tolerances,
    numerical_grad,
    numerical_grad_multi,
)

__all__ = [
    # gradcheck
    "ElementMismatch",
    "GradcheckFailure",
    "check_gradient",
    "check_gradients",
    "default_tolerances",
    "numerical_grad",
    "numerical_grad_multi",
    # equivalence
    "PARALLELISMS",
    "Comparison",
    "EquivalenceFailure",
    "EquivalenceReport",
    "check_parallel_equivalence",
    "oracle_config",
    # fuzz
    "OPS",
    "OpSpec",
    "FuzzFailure",
    "FuzzReport",
    "fuzz_ops",
    "seeded_arrays",
    # conformance
    "ASYNC_COLLECTIVES",
    "COLLECTIVES",
    "CollectiveResult",
    "ConformanceFailure",
    "ConformanceReport",
    "check_async_collective",
    "check_collective",
    "expected_sent_bytes",
    "run_async_conformance",
    "run_conformance",
    # golden
    "GoldenMismatch",
    "check_golden",
    "extract_numbers",
    "structure_of",
    "update_requested",
    # benchdiff
    "MetricDelta",
    "diff_docs",
    "diff_files",
    "render_deltas",
]
