"""Neural-network layers, optimizers, and mixed precision on the autograd engine."""

from .amp import Bf16Cast, GradScaler, autocast_module
from .attention import CrossAttention, MultiHeadSelfAttention
from .checkpoint import CheckpointedSequential, checkpoint, checkpointed_activation_bytes
from .flash_attention import (
    attention_flop_count,
    attention_peak_elems,
    flash_attention,
    naive_attention,
)
from .flat import FlatParamBuffer
from .layers import MLP, Conv2d, LayerNorm, Linear, Sequential
from .module import Identity, Module, ModuleList, Parameter
from .optim import AdamW, SGD, clip_grad_norm, cosine_schedule, warmup_cosine
from .transformer import PatchEmbed, TransformerBlock, TransformerEncoder, unpatchify

__all__ = [
    "Module",
    "checkpoint",
    "CheckpointedSequential",
    "checkpointed_activation_bytes",
    "ModuleList",
    "Parameter",
    "Identity",
    "Linear",
    "Conv2d",
    "LayerNorm",
    "MLP",
    "Sequential",
    "MultiHeadSelfAttention",
    "CrossAttention",
    "flash_attention",
    "naive_attention",
    "attention_flop_count",
    "attention_peak_elems",
    "PatchEmbed",
    "TransformerBlock",
    "TransformerEncoder",
    "unpatchify",
    "FlatParamBuffer",
    "SGD",
    "AdamW",
    "cosine_schedule",
    "warmup_cosine",
    "clip_grad_norm",
    "GradScaler",
    "Bf16Cast",
    "autocast_module",
]
