"""Activation checkpointing (gradient rematerialization).

Long-sequence training is activation-memory bound; checkpointing trades
compute for memory by discarding intermediate activations in the forward
pass and recomputing them during backward.  This is the standard
technique large-model stacks pair with FSDP's layer wrapping (Sec. III-D)
to keep peak memory at O(one layer) instead of O(depth).

``checkpoint(fn, *inputs)`` runs ``fn`` WITHOUT building a graph, storing
only inputs and outputs; on backward it re-runs ``fn`` with gradients
enabled and backpropagates through the fresh subgraph.  Parameters used
inside ``fn`` receive their gradients during the re-run (they are graph
leaves), so training semantics are identical — verified in tests.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, no_grad
from .module import Module

__all__ = ["checkpoint", "CheckpointedSequential", "checkpointed_activation_bytes"]


def checkpoint(fn, *inputs: Tensor, params: list[Tensor] | None = None) -> Tensor:
    """Memory-saving evaluation of ``fn(*inputs)``.

    ``fn`` must be deterministic (re-run on backward) and return a single
    Tensor.  Gradients flow to ``inputs`` and to any Parameters ``fn``
    touches — if ``fn`` is a :class:`Module` its parameters are detected
    automatically; otherwise pass the trainables via ``params`` so the
    output participates in the outer graph even when no input requires
    grad.
    """
    if params is None and isinstance(fn, Module):
        params = fn.parameters()
    params = tuple(params or ())
    with no_grad():
        out_data = fn(*[Tensor(t.data) for t in inputs]).data

    def backward(g):
        # rematerialize: rebuild the subgraph with gradients enabled; the
        # parameters are leaves of the fresh subgraph, so the inner
        # backward accumulates their .grad in place
        leaves = [Tensor(t.data, requires_grad=True) for t in inputs]
        out = fn(*leaves)
        out.backward(np.asarray(g, dtype=np.float32))
        grads = [(orig, leaf.grad) for orig, leaf in zip(inputs, leaves)]
        grads.extend((p, None) for p in params)  # already accumulated
        return tuple(grads)

    node_data = out_data.copy()

    def replay():
        # opaque region: re-run fn eagerly (no graph) against the live
        # input buffers; backward rematerializes a fresh subgraph anyway
        with no_grad():
            np.copyto(node_data, fn(*[Tensor(t.data) for t in inputs]).data)

    return Tensor._from_op(node_data, inputs + params, backward, "checkpoint", replay=replay)


class CheckpointedSequential(Module):
    """Run sub-modules in order, checkpointing each one.

    Peak stored activations drop from O(depth · layer) to
    O(depth · boundary + one layer's recompute working set) — the
    layer-wrapping memory profile.
    """

    def __init__(self, *modules: Module):
        super().__init__()
        self._items = list(modules)
        for i, mod in enumerate(self._items):
            self._modules[str(i)] = mod

    def __len__(self):
        return len(self._items)

    def forward(self, x: Tensor) -> Tensor:
        for mod in self._items:
            x = checkpoint(mod, x)
        return x


def checkpointed_activation_bytes(depth: int, tokens: int, dim: int,
                                  per_layer_tensors: int = 16,
                                  bytes_per_elem: int = 2,
                                  checkpointing: bool = True) -> float:
    """Stored-activation bytes for a ``depth``-layer transformer.

    Without checkpointing every layer keeps ~``per_layer_tensors``
    activations alive for backward; with it, only the layer boundaries
    plus one layer's working set survive.
    """
    boundary = tokens * dim * bytes_per_elem
    if not checkpointing:
        return depth * per_layer_tensors * boundary
    return depth * boundary + per_layer_tensors * boundary
