"""Optimizers and learning-rate schedules.

AdamW is the workhorse for ViT training; SGD exists as the simple
baseline and for tests.  Optimizer state lives in plain float32 NumPy
arrays keyed by parameter identity, which is also what FSDP shards when
it distributes optimizer state across ranks.

Both optimizers accept ``flatten=True``, which moves the model onto a
:class:`~repro.nn.flat.FlatParamBuffer` and performs **one** vectorised
update over the contiguous buffer per step instead of a Python loop over
parameter tensors.  The elementwise operation sequence is identical, so
flat and per-parameter modes produce bit-identical trajectories — with
one documented semantic difference: the per-parameter loop *skips*
parameters whose ``.grad`` is ``None``, while flat mode treats a missing
gradient as zero (moments still decay, weight decay still applies).
Models whose parameters all receive gradients every step — every Reslim
configuration in this repo — see no difference.
"""

from __future__ import annotations

import numpy as np

from .flat import FlatParamBuffer
from .module import Parameter

__all__ = ["SGD", "AdamW", "cosine_schedule", "warmup_cosine", "clip_grad_norm"]


class Optimizer:
    """Base optimizer: holds parameter list and learning rate.

    With ``flatten=True`` the parameters are moved onto a shared
    :class:`FlatParamBuffer` (``self.flat``) and ``zero_grad`` zeroes the
    flat gradient buffer in one memset, keeping the pre-attached views
    alive for the backward pass's in-place accumulation.  Passing an
    existing buffer via ``flat=`` *adopts* it instead of wrapping the
    parameters a second time — the path distributed strategies use so
    optimizer steps and gradient collectives share one allocation.
    """

    def __init__(self, params: list[Parameter], lr: float, flatten: bool = False,
                 flat: FlatParamBuffer | None = None):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)
        if flat is not None:
            if len(flat.params) != len(self.params) or any(
                a is not b for a, b in zip(flat.params, self.params)
            ):
                raise ValueError("adopted FlatParamBuffer wraps different parameters")
            self.flat: FlatParamBuffer | None = flat
        else:
            self.flat = FlatParamBuffer(self.params) if flatten else None

    def zero_grad(self) -> None:
        if self.flat is not None:
            self.flat.zero_grad()
        else:
            for p in self.params:
                p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Plain SGD with optional momentum."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0,
                 flatten: bool = False, flat: FlatParamBuffer | None = None):
        super().__init__(params, lr, flatten=flatten, flat=flat)
        self.momentum = momentum
        if self.flat is not None:
            self._velocity = [np.zeros_like(self.flat.data)]
        else:
            self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        if self.flat is not None:
            self.flat.sync_grads()
            g = self.flat.grad
            if self.momentum:
                v = self._velocity[0]
                v *= self.momentum
                v += g
                self.flat.data -= self.lr * v
            else:
                self.flat.data -= self.lr * g
            return
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class AdamW(Optimizer):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(self, params, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.01,
                 flatten: bool = False, flat: FlatParamBuffer | None = None):
        super().__init__(params, lr, flatten=flatten, flat=flat)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        if self.flat is not None:
            self._m = [np.zeros_like(self.flat.data)]
            self._v = [np.zeros_like(self.flat.data)]
            # two reusable scratch buffers make the flat step allocation-free
            self._scratch = np.empty_like(self.flat.data)
            self._scratch2 = np.empty_like(self.flat.data)
        else:
            self._m = [np.zeros_like(p.data) for p in self.params]
            self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.beta1**self.t
        bc2 = 1.0 - self.beta2**self.t
        if self.flat is not None:
            # same elementwise sequence as the per-parameter loop below,
            # rewritten into preallocated scratch (bit-identical: float
            # multiplication commutes, so m_hat*lr == lr*m_hat etc.)
            self.flat.sync_grads()
            g = self.flat.grad
            m, v = self._m[0], self._v[0]
            s, s2 = self._scratch, self._scratch2
            m *= self.beta1
            np.multiply(g, 1 - self.beta1, out=s)
            m += s
            v *= self.beta2
            np.multiply(g, g, out=s)
            s *= 1 - self.beta2
            v += s
            if self.weight_decay:
                np.multiply(self.flat.data, self.lr * self.weight_decay, out=s)
                self.flat.data -= s
            np.divide(m, bc1, out=s)      # m_hat
            s *= self.lr                  # lr * m_hat
            np.divide(v, bc2, out=s2)     # v_hat
            np.sqrt(s2, out=s2)
            s2 += self.eps
            s /= s2
            self.flat.data -= s
            return
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * (g * g)
            m_hat = m / bc1
            v_hat = v / bc2
            if self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_nbytes(self) -> int:
        """Bytes of optimizer state — FSDP's sharding target (2 moments)."""
        return sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v))

    def export_state(self) -> tuple[np.ndarray, np.ndarray, int]:
        """Copy out flat-mode moment vectors and step count (canonical form).

        Flat mode only: the moments live in the same canonical layout as
        the flat parameter buffer, which is what the elastic remap moves.
        """
        if self.flat is None:
            raise ValueError("export_state requires flat mode")
        return self._m[0].copy(), self._v[0].copy(), self.t

    def import_state(self, m: np.ndarray, v: np.ndarray, t: int) -> None:
        """Overwrite flat-mode moments and step count in place, bitwise.

        The scratch buffers need no reset — every step fully rewrites
        them via ``out=`` before reading, so imported state reproduces a
        fresh optimizer's trajectory bit-for-bit.
        """
        if self.flat is None:
            raise ValueError("import_state requires flat mode")
        m = np.asarray(m, dtype=np.float32).reshape(-1)
        v = np.asarray(v, dtype=np.float32).reshape(-1)
        size = self._m[0].size
        if m.size < size or v.size < size:
            raise ValueError(
                f"moment vectors of {m.size}/{v.size} < buffer of {size}")
        self._m[0][...] = m[:size]
        self._v[0][...] = v[:size]
        self.t = int(t)


def cosine_schedule(step: int, total_steps: int, base_lr: float, min_lr: float = 0.0) -> float:
    """Cosine decay from ``base_lr`` to ``min_lr`` over ``total_steps``."""
    if total_steps <= 0:
        raise ValueError("total_steps must be positive")
    frac = min(max(step / total_steps, 0.0), 1.0)
    return min_lr + 0.5 * (base_lr - min_lr) * (1 + np.cos(np.pi * frac))


def warmup_cosine(step: int, warmup_steps: int, total_steps: int,
                  base_lr: float, min_lr: float = 0.0) -> float:
    """Linear warmup followed by cosine decay (the standard ViT schedule)."""
    if warmup_steps > 0 and step < warmup_steps:
        return base_lr * (step + 1) / warmup_steps
    return cosine_schedule(step - warmup_steps, max(total_steps - warmup_steps, 1), base_lr, min_lr)


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging/instability detection).
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad.astype(np.float64) ** 2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm
