"""Optimizers and learning-rate schedules.

AdamW is the workhorse for ViT training; SGD exists as the simple
baseline and for tests.  Optimizer state lives in plain float32 NumPy
arrays keyed by parameter identity, which is also what FSDP shards when
it distributes optimizer state across ranks.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["SGD", "AdamW", "cosine_schedule", "warmup_cosine", "clip_grad_norm"]


class Optimizer:
    """Base optimizer: holds parameter list and learning rate."""

    def __init__(self, params: list[Parameter], lr: float):
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer got an empty parameter list")
        self.lr = float(lr)

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:  # pragma: no cover - abstract
        raise NotImplementedError


class SGD(Optimizer):
    """Plain SGD with optional momentum."""

    def __init__(self, params, lr: float = 1e-2, momentum: float = 0.0):
        super().__init__(params, lr)
        self.momentum = momentum
        self._velocity = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        for p, v in zip(self.params, self._velocity):
            if p.grad is None:
                continue
            if self.momentum:
                v *= self.momentum
                v += p.grad
                p.data -= self.lr * v
            else:
                p.data -= self.lr * p.grad


class AdamW(Optimizer):
    """Adam with decoupled weight decay (Loshchilov & Hutter)."""

    def __init__(self, params, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.01):
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self.t = 0
        self._m = [np.zeros_like(p.data) for p in self.params]
        self._v = [np.zeros_like(p.data) for p in self.params]

    def step(self) -> None:
        self.t += 1
        bc1 = 1.0 - self.beta1**self.t
        bc2 = 1.0 - self.beta2**self.t
        for p, m, v in zip(self.params, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            m *= self.beta1
            m += (1 - self.beta1) * g
            v *= self.beta2
            v += (1 - self.beta2) * (g * g)
            m_hat = m / bc1
            v_hat = v / bc2
            if self.weight_decay:
                p.data -= self.lr * self.weight_decay * p.data
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def state_nbytes(self) -> int:
        """Bytes of optimizer state — FSDP's sharding target (2 moments)."""
        return sum(m.nbytes + v.nbytes for m, v in zip(self._m, self._v))


def cosine_schedule(step: int, total_steps: int, base_lr: float, min_lr: float = 0.0) -> float:
    """Cosine decay from ``base_lr`` to ``min_lr`` over ``total_steps``."""
    if total_steps <= 0:
        raise ValueError("total_steps must be positive")
    frac = min(max(step / total_steps, 0.0), 1.0)
    return min_lr + 0.5 * (base_lr - min_lr) * (1 + np.cos(np.pi * frac))


def warmup_cosine(step: int, warmup_steps: int, total_steps: int,
                  base_lr: float, min_lr: float = 0.0) -> float:
    """Linear warmup followed by cosine decay (the standard ViT schedule)."""
    if warmup_steps > 0 and step < warmup_steps:
        return base_lr * (step + 1) / warmup_steps
    return cosine_schedule(step - warmup_steps, max(total_steps - warmup_steps, 1), base_lr, min_lr)


def clip_grad_norm(params: list[Parameter], max_norm: float) -> float:
    """Scale gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip norm (useful for logging/instability detection).
    """
    total = 0.0
    for p in params:
        if p.grad is not None:
            total += float(np.sum(p.grad.astype(np.float64) ** 2))
    norm = float(np.sqrt(total))
    if norm > max_norm and norm > 0:
        scale = max_norm / norm
        for p in params:
            if p.grad is not None:
                p.grad *= scale
    return norm
