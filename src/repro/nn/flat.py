"""Contiguous flat parameter/gradient buffers.

One allocation holds every parameter of a model, and a second one holds
every gradient.  Each :class:`~repro.nn.module.Parameter`'s ``.data`` is
re-pointed to a reshaped view into the flat data buffer, and ``.grad`` is
pre-attached to a view into the flat gradient buffer — the backward
pass's in-place leaf accumulation (``np.add(..., out=self.grad)``) then
writes straight into the flat array with zero copies.

This buys three things on the hot path:

* ``nn.optim`` runs **one** vectorised Adam/SGD update per model instead
  of a Python loop over dozens of parameter tensors;
* ``distributed.ddp`` / ``distributed.fsdp`` issue **one** bucketed
  collective over the flat gradient buffer instead of per-parameter
  calls;
* gradient clipping / loss-scale unscaling (which use in-place ``*=``)
  operate on views and need no change.

The layout is the model's deterministic ``named_parameters()`` order, so
every rank of a data-parallel job builds an identical flat layout and
collectives over the raw buffers are element-aligned.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["FlatParamBuffer"]


class FlatParamBuffer:
    """A flat float32 view over a list of parameters.

    Construction copies each parameter's current values into the flat
    ``data`` array once, then re-points ``p.data`` at a view of it; all
    later updates (optimizer steps, ``load_state_dict``'s in-place
    assignment, autocast's round-tripping) mutate the shared storage.
    ``p.grad`` is attached to a zeroed view of the flat ``grad`` array so
    gradient accumulation lands in the buffer directly.

    Gradient views are attached on the first :meth:`zero_grad` (every
    optimizer/DDP step starts with one), so backward's in-place leaf
    accumulation lands in the flat buffer directly.  Code that *detaches*
    ``p.grad`` (sets it to ``None`` or replaces the array, e.g.
    ``Module.zero_grad`` or ``unflatten_to_grads``) is reconciled by
    :meth:`sync_grads`, which copies stray arrays back into the flat
    views.  Prefer :meth:`zero_grad` over ``Module.zero_grad`` between
    steps to stay on the zero-copy path.
    """

    def __init__(self, params: list[Parameter]):
        self.params = list(params)
        if not self.params:
            raise ValueError("FlatParamBuffer got an empty parameter list")
        sizes = [int(p.data.size) for p in self.params]
        bounds = np.cumsum([0] + sizes)
        self.spans: list[tuple[int, int]] = [
            (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        self.size = int(bounds[-1])
        self.data = np.empty(self.size, dtype=np.float32)
        self.grad = np.zeros(self.size, dtype=np.float32)
        self._data_views: list[np.ndarray] = []
        self._grad_views: list[np.ndarray] = []
        for p, (lo, hi) in zip(self.params, self.spans):
            dview = self.data[lo:hi].reshape(p.data.shape)
            dview[...] = p.data
            p.data = dview
            gview = self.grad[lo:hi].reshape(dview.shape)
            self._data_views.append(dview)
            self._grad_views.append(gview)
        # .grad views are attached lazily by zero_grad()/sync_grads() so a
        # freshly wrapped model still reports p.grad is None until a
        # backward (or an explicit zero_grad) happens

    def _attach_grad_views(self) -> None:
        for p, gview in zip(self.params, self._grad_views):
            p.grad = gview

    def zero_grad(self) -> None:
        """Zero the flat gradient buffer and re-attach the per-param views."""
        self.grad[...] = 0.0
        self._attach_grad_views()

    def sync_grads(self) -> None:
        """Fold any detached per-parameter gradients back into the buffer.

        A parameter whose ``.grad`` is still the attached view costs
        nothing.  ``None`` becomes zeros (missing-grad-as-zero — see the
        optimizer docs); a foreign array is copied in and the view
        re-attached.
        """
        for p, gview in zip(self.params, self._grad_views):
            if p.grad is gview:
                continue
            if p.grad is None:
                gview[...] = 0.0
            else:
                gview[...] = p.grad
            p.grad = gview

    def padded_size(self, multiple: int) -> int:
        """Flat size rounded up to a multiple (FSDP shard alignment)."""
        if multiple < 1:
            raise ValueError("multiple must be >= 1")
        return -(-self.size // multiple) * multiple

    def padded_grad(self, multiple: int) -> np.ndarray:
        """The flat gradient, zero-padded to a multiple of ``multiple``.

        Returns the live buffer itself when already aligned (zero-copy);
        collectives in :mod:`repro.distributed.comm` never mutate their
        input buffers, so sharing is safe.
        """
        padded = self.padded_size(multiple)
        if padded == self.size:
            return self.grad
        out = np.zeros(padded, dtype=np.float32)
        out[: self.size] = self.grad
        return out

    def load_grad(self, flat: np.ndarray) -> None:
        """Write a flat (possibly padded) gradient back into the buffer.

        The pre-attached per-parameter ``.grad`` views see the new values
        immediately — no per-parameter unflatten copies.
        """
        if flat.size < self.size:
            raise ValueError(f"gradient of {flat.size} < buffer of {self.size}")
        self.grad[...] = flat.reshape(-1)[: self.size]

    def export_data(self) -> np.ndarray:
        """Copy out the flat parameter vector (canonical layout).

        The layout is the deterministic ``named_parameters()`` order every
        plan shares, so the returned vector is the plan-independent
        canonical form used by :mod:`repro.distributed.elastic`.
        """
        return self.data.copy()

    def load_data(self, flat: np.ndarray) -> None:
        """Overwrite the flat parameter vector in place, bitwise.

        Every ``p.data`` view sees the new values immediately.  ``flat``
        may be padded; extra tail elements are ignored.
        """
        flat = np.asarray(flat, dtype=np.float32).reshape(-1)
        if flat.size < self.size:
            raise ValueError(f"state of {flat.size} < buffer of {self.size}")
        self.data[...] = flat[: self.size]

    def sync_data(self) -> None:
        """Copy back any ``p.data`` that was re-pointed away from its view.

        Defensive hook for code that *replaces* (rather than mutates)
        parameter arrays; everything in-tree mutates in place.
        """
        for p, dview in zip(self.params, self._data_views):
            if p.data is dview:
                continue
            dview[...] = p.data
            p.data = dview
