"""Multi-head self- and cross-attention layers.

Self-attention is the quadratic-cost core of the ViT; cross-attention is
Reslim's variable aggregator (Fig. 2, purple block) that collapses the
physical-variable dimension into a single token stream.  Both can route
through the blocked flash kernel or the naive reference implementation.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor
from .flash_attention import flash_attention, naive_attention
from .layers import Linear
from .module import Module

__all__ = ["MultiHeadSelfAttention", "CrossAttention"]


def _split_heads(x: Tensor, num_heads: int) -> Tensor:
    """(B, L, D) → (B, H, L, D/H)."""
    b, l, d = x.shape
    return x.reshape(b, l, num_heads, d // num_heads).permute(0, 2, 1, 3)


def _merge_heads(x: Tensor) -> Tensor:
    """(B, H, L, Dh) → (B, L, H*Dh)."""
    b, h, l, dh = x.shape
    return x.permute(0, 2, 1, 3).reshape(b, l, h * dh)


class MultiHeadSelfAttention(Module):
    """Standard MHSA with optional flash (cache-blocked) kernel.

    Parameters
    ----------
    dim:
        Embedding width; must be divisible by ``num_heads``.
    use_flash:
        Route the score computation through the blocked online-softmax
        kernel.  Numerically equivalent; linear temporary memory in L.
    block_size:
        Flash tile edge in tokens.
    """

    def __init__(self, dim: int, num_heads: int, use_flash: bool = True,
                 block_size: int = 128, rng: np.random.Generator | None = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng(0)
        self.num_heads = num_heads
        self.use_flash = use_flash
        self.block_size = block_size
        self.qkv = Linear(dim, 3 * dim, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        b, l, d = x.shape
        qkv = self.qkv(x)  # (B, L, 3D)
        q = _split_heads(qkv[:, :, :d], self.num_heads)
        k = _split_heads(qkv[:, :, d : 2 * d], self.num_heads)
        v = _split_heads(qkv[:, :, 2 * d :], self.num_heads)
        if self.use_flash:
            out = flash_attention(q, k, v, block_size=self.block_size)
        else:
            out = naive_attention(q, k, v)
        return self.proj(_merge_heads(out))


class CrossAttention(Module):
    """Attention of a query stream over a context stream.

    Reslim uses this to aggregate the V per-variable embeddings into one:
    queries come from a learned (or mean) aggregate token per spatial
    location, keys/values from the V variable embeddings, so the variable
    axis (length V ≈ 23) is the attention sequence — cheap, and the output
    sequence no longer scales with the number of physical variables.
    """

    def __init__(self, dim: int, num_heads: int, use_flash: bool = False,
                 block_size: int = 128, rng: np.random.Generator | None = None):
        super().__init__()
        if dim % num_heads != 0:
            raise ValueError(f"dim {dim} not divisible by num_heads {num_heads}")
        rng = rng or np.random.default_rng(0)
        self.num_heads = num_heads
        self.use_flash = use_flash
        self.block_size = block_size
        self.to_q = Linear(dim, dim, rng=rng)
        self.to_k = Linear(dim, dim, rng=rng)
        self.to_v = Linear(dim, dim, rng=rng)
        self.proj = Linear(dim, dim, rng=rng)

    def forward(self, query: Tensor, context: Tensor) -> Tensor:
        """``query``: (B, Lq, D); ``context``: (B, Lk, D) → (B, Lq, D)."""
        q = _split_heads(self.to_q(query), self.num_heads)
        k = _split_heads(self.to_k(context), self.num_heads)
        v = _split_heads(self.to_v(context), self.num_heads)
        if self.use_flash:
            out = flash_attention(q, k, v, block_size=self.block_size)
        else:
            out = naive_attention(q, k, v)
        return self.proj(_merge_heads(out))
