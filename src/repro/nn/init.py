"""Weight initializers.

ViT training at billions of parameters is sensitive to initialization
scale; we follow the standard recipes: truncated-normal for embeddings,
Xavier-uniform for attention/MLP projections, Kaiming for convolutions,
and zero-init for residual-branch output projections (which also makes the
Reslim residual path exactly the identity mapping at step 0).
"""

from __future__ import annotations

import numpy as np

__all__ = ["xavier_uniform", "kaiming_normal", "trunc_normal", "zeros", "ones"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He-normal for ReLU/GELU-family convolutions: N(0, 2/fan_in)."""
    fan_in, _ = _fans(shape)
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def trunc_normal(
    shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02, bound: float = 2.0
) -> np.ndarray:
    """Normal(0, std) truncated at ±bound·std via resampling."""
    out = rng.standard_normal(shape)
    bad = np.abs(out) > bound
    while np.any(bad):
        out[bad] = rng.standard_normal(int(bad.sum()))
        bad = np.abs(out) > bound
    return (out * std).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    """(fan_in, fan_out) for dense (out, in) and conv (out, in, kh, kw) shapes."""
    if len(shape) < 1:
        raise ValueError("scalar parameters have no fan")
    if len(shape) == 1:
        return shape[0], shape[0]
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_out = shape[0] * receptive
    fan_in = shape[1] * receptive
    return fan_in, fan_out
