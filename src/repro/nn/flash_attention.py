"""Cache-blocked exact attention ("Flash Attention" on NumPy).

The paper accelerates self-attention with Flash Attention (Sec. III-D):
a cache-blocking technique that never materializes the full L×L score
matrix, computing softmax online block by block.  On Frontier the blocks
map to streaming-multiprocessor tiles; here the same algorithm runs over
NumPy blocks.  Two things matter for the reproduction:

1. **Exactness** — blocked online softmax must produce the same output
   (and gradients) as naive attention, verified in tests.
2. **Memory** — peak temporary memory is ``O(L * block)`` instead of
   ``O(L^2)``, which is what the perf model's memory accounting uses to
   decide when a configuration fits on a 64 GB GPU (Table III).

The backward pass follows FlashAttention-2: store only the per-row
log-sum-exp from the forward, recompute block scores on the way back.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor

__all__ = ["flash_attention", "naive_attention", "attention_flop_count", "attention_peak_elems"]


def naive_attention(q: Tensor, k: Tensor, v: Tensor, scale: float | None = None) -> Tensor:
    """Reference O(L^2)-memory attention used as the correctness oracle."""
    from ..tensor import softmax

    d = q.shape[-1]
    scale = scale if scale is not None else 1.0 / np.sqrt(d)
    scores = (q @ k.transpose(-1, -2)) * scale
    probs = softmax(scores, axis=-1)
    return probs @ v


def flash_attention(
    q: Tensor, k: Tensor, v: Tensor, scale: float | None = None, block_size: int = 128
) -> Tensor:
    """Blocked online-softmax attention with exact gradients.

    Inputs are ``(..., L, D)``; any leading batch/head dims are flattened
    internally.  ``block_size`` is the tile edge in tokens — the analogue
    of the SRAM tile in the GPU kernel.
    """
    d = q.shape[-1]
    lq = q.shape[-2]
    lk = k.shape[-2]
    sc = np.float32(scale if scale is not None else 1.0 / np.sqrt(d))
    bs = max(1, int(block_size))

    batch_shape = q.shape[:-2]
    qd = q.data.reshape(-1, lq, d)
    kd = k.data.reshape(-1, lk, d)
    vd = v.data.reshape(-1, lk, d)
    nb = qd.shape[0]

    from ..tensor.flops import add_flops

    add_flops(4.0 * nb * lq * lk * d)  # QK^T + PV forward GEMMs

    out = np.empty((nb, lq, d), dtype=np.float32)
    lse = np.empty((nb, lq), dtype=np.float32)  # log-sum-exp per query row

    # BLAS matmuls on transposed views (no einsum path search per block),
    # with in-place rescaling of the running accumulators.  The softmax
    # scale is folded into Q once — (sc*Q)K^T touches nb*L*d elements
    # instead of an O(L^2) `s *= sc` pass per block pair.
    qsc = qd * sc
    kdT = np.swapaxes(kd, -1, -2)

    def run_blocks():
        for i0 in range(0, lq, bs):
            i1 = min(i0 + bs, lq)
            qi = qsc[:, i0:i1]  # (nb, bq, d), pre-scaled
            m = np.full((nb, i1 - i0), -np.inf, dtype=np.float32)
            l = np.zeros((nb, i1 - i0), dtype=np.float32)
            acc = np.zeros((nb, i1 - i0, d), dtype=np.float32)
            for j0 in range(0, lk, bs):
                j1 = min(j0 + bs, lk)
                s = qi @ kdT[:, :, j0:j1]  # fresh buffer, reused as p below
                m_new = np.maximum(m, s.max(axis=-1))
                correction = np.exp(m - m_new)
                np.subtract(s, m_new[..., None], out=s)
                np.exp(s, out=s)  # s is now the unnormalised probabilities p
                l *= correction
                l += s.sum(axis=-1)
                acc *= correction[..., None]
                acc += s @ vd[:, j0:j1]
                m = m_new
            np.divide(acc, l[..., None], out=out[:, i0:i1])
            lse[:, i0:i1] = m + np.log(l)

    run_blocks()
    out_full = out.reshape(*batch_shape, lq, d)

    def backward(g):
        add_flops(10.0 * nb * lq * lk * d)  # recompute + 4 gradient GEMMs
        go = np.asarray(g, dtype=np.float32).reshape(nb, lq, d)
        # D_i = rowsum(dO * O): the softmax-jacobian diagonal correction
        delta = (go * out).sum(axis=-1)  # (nb, lq)
        dq = np.zeros_like(qd)
        dk = np.zeros_like(kd)
        dv = np.zeros_like(vd)
        # fold the softmax scale into Q/K once (O(L*d) passes) instead of
        # two O(L^2) `s *= sc` passes per block pair: (sc*Q)K^T recomputes
        # the scores, and ds·(sc*K) / ds^T·(sc*Q) absorb the chain-rule sc
        ksc = kd * sc
        for j0 in range(0, lk, bs):
            j1 = min(j0 + bs, lk)
            kjT = np.swapaxes(kd[:, j0:j1], -1, -2)
            ksc_j = ksc[:, j0:j1]
            vjT = np.swapaxes(vd[:, j0:j1], -1, -2)
            for i0 in range(0, lq, bs):
                i1 = min(i0 + bs, lq)
                qi = qsc[:, i0:i1]  # pre-scaled
                s = qi @ kjT  # fresh buffer: recomputed scores → p → ds
                np.subtract(s, lse[:, i0:i1, None], out=s)
                np.exp(s, out=s)  # s is now p
                goi = go[:, i0:i1]
                dv[:, j0:j1] += np.swapaxes(s, -1, -2) @ goi
                dp = goi @ vjT
                np.subtract(dp, delta[:, i0:i1, None], out=dp)
                s *= dp  # s is now p * (dp - delta)
                dq[:, i0:i1] += s @ ksc_j
                dk[:, j0:j1] += np.swapaxes(s, -1, -2) @ qi
        return (
            (q, dq.reshape(q.shape)),
            (k, dk.reshape(k.shape)),
            (v, dv.reshape(v.shape)),
        )

    # qd/kd/vd are reshape *copies* when the parent data is non-contiguous;
    # replay must refill them from the live parent buffers before re-running
    # the block loop (views track the parent automatically and are skipped).
    _refresh = [
        (buf, t, shape)
        for buf, t, shape in ((qd, q, (-1, lq, d)), (kd, k, (-1, lk, d)), (vd, v, (-1, lk, d)))
        if not np.shares_memory(buf, t.data)
    ]

    def replay():
        for buf, t, shape in _refresh:
            np.copyto(buf, t.data.reshape(shape))
        np.multiply(qd, sc, out=qsc)
        add_flops(4.0 * nb * lq * lk * d)
        run_blocks()

    return Tensor._from_op(out_full, (q, k, v), backward, "flash_attention", replay=replay)


def attention_flop_count(seq_len: int, head_dim: int, num_heads: int, batch: int = 1) -> int:
    """FLOPs of one attention forward: 2·(QK^T) + 2·(PV) matmuls.

    Counts multiply-adds as 2 FLOPs, matching the DeepSpeed profiler
    convention the paper reports throughput with.
    """
    per_head = 2 * seq_len * seq_len * head_dim * 2  # scores + weighted sum
    return batch * num_heads * per_head


def attention_peak_elems(seq_len: int, head_dim: int, block_size: int, flash: bool) -> int:
    """Peak temporary elements per (batch, head) for the memory model.

    Naive attention materializes the L×L probability matrix; flash keeps
    only a ``block × L`` working set plus accumulators.
    """
    if flash:
        b = min(block_size, seq_len)
        return b * seq_len + 2 * b * head_dim + 2 * b
    return seq_len * seq_len + seq_len * head_dim
