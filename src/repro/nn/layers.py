"""Dense, convolutional, and normalization layers."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, conv2d, gelu, layernorm, linear
from . import init
from .module import Module, Parameter

__all__ = ["Linear", "Conv2d", "LayerNorm", "MLP", "Sequential"]


class Linear(Module):
    """Affine map ``y = x W^T + b`` on the trailing dimension.

    Weight layout is ``(out_features, in_features)`` so tensor-parallel
    sharding (row = input dim, column = output dim) matches Megatron's
    convention (see ``repro.distributed.tensor_parallel``).
    """

    def __init__(self, in_features: int, out_features: int, bias: bool = True,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return linear(x, self.weight, self.bias)


class Conv2d(Module):
    """2-D convolution on NCHW tensors (im2col + GEMM under the hood)."""

    def __init__(self, in_channels: int, out_channels: int, kernel_size: int,
                 stride: int = 1, padding: int = 0, bias: bool = True,
                 rng: np.random.Generator | None = None, zero_init: bool = False):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.stride = stride
        self.padding = padding
        shape = (out_channels, in_channels, kernel_size, kernel_size)
        w = init.zeros(shape) if zero_init else init.kaiming_normal(shape, rng)
        self.weight = Parameter(w)
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return conv2d(x, self.weight, self.bias, stride=self.stride, pad=self.padding)


class LayerNorm(Module):
    """Layer normalization over the trailing feature dimension."""

    def __init__(self, dim: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.weight = Parameter(init.ones((dim,)))
        self.bias = Parameter(init.zeros((dim,)))

    def forward(self, x: Tensor) -> Tensor:
        return layernorm(x, self.weight, self.bias, eps=self.eps)


class MLP(Module):
    """Transformer feed-forward sub-layer: Linear → GELU → Linear."""

    def __init__(self, dim: int, hidden_dim: int | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        hidden_dim = hidden_dim or 4 * dim
        rng = rng or np.random.default_rng(0)
        self.fc1 = Linear(dim, hidden_dim, rng=rng)
        self.fc2 = Linear(hidden_dim, dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        return self.fc2(gelu(self.fc1(x)))


class Sequential(Module):
    """Run sub-modules in order."""

    def __init__(self, *modules: Module):
        super().__init__()
        self._items = list(modules)
        for i, mod in enumerate(self._items):
            self._modules[str(i)] = mod

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def forward(self, x: Tensor) -> Tensor:
        for mod in self._items:
            x = mod(x)
        return x
