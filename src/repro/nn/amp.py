"""BFLOAT16 mixed precision with dynamic gradient scaling.

Reproduces the paper's recipe (Sec. III-D): activations/weights are
rounded to the bfloat16 grid on the forward pass while master weights and
optimizer state stay float32, and a dynamic :class:`GradScaler` multiplies
the loss so small gradients survive the 8-bit mantissa, backing off on
overflow exactly like ``torch.cuda.amp.GradScaler``.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, bf16_round
from .module import Module, Parameter

__all__ = ["GradScaler", "autocast_module", "Bf16Cast"]


class GradScaler:
    """Dynamic loss scaling for bf16 training.

    ``scale()`` multiplies the loss; after backward, ``step()`` checks all
    gradients for inf/NaN.  If any are found the optimizer step is skipped
    and the scale halves; after ``growth_interval`` consecutive clean
    steps it doubles (capped).  This is the standard PyTorch algorithm.
    """

    def __init__(self, init_scale: float = 2.0**16, growth_factor: float = 2.0,
                 backoff_factor: float = 0.5, growth_interval: int = 200,
                 max_scale: float = 2.0**24):
        if init_scale <= 0:
            raise ValueError("init_scale must be positive")
        self.scale_value = float(init_scale)
        self.growth_factor = growth_factor
        self.backoff_factor = backoff_factor
        self.growth_interval = growth_interval
        self.max_scale = max_scale
        self._good_steps = 0
        self.num_overflows = 0

    def scale(self, loss: Tensor) -> Tensor:
        return loss * self.scale_value

    def found_overflow(self, params: list[Parameter]) -> bool:
        for p in params:
            if p.grad is not None and not np.all(np.isfinite(p.grad)):
                return True
        return False

    def unscale(self, params: list[Parameter]) -> None:
        inv = 1.0 / self.scale_value
        for p in params:
            if p.grad is not None:
                p.grad *= inv

    def step(self, optimizer) -> bool:
        """Unscale, check, and either step the optimizer or skip.

        Returns True if the step was taken.
        """
        return self.step_all([optimizer])

    def step_all(self, optimizers) -> bool:
        """One scaler decision over several optimizers (one per replica).

        Distributed strategies hold one optimizer per model unit but the
        units share a gradient (post-reduction), so overflow must skip
        *all* steps together and the scale bookkeeping advances once per
        training step, not once per unit.  Returns True if stepped.
        """
        if any(self.found_overflow(opt.params) for opt in optimizers):
            self.num_overflows += 1
            self._good_steps = 0
            self.scale_value = max(self.scale_value * self.backoff_factor, 1.0)
            for opt in optimizers:
                opt.zero_grad()
            return False
        for opt in optimizers:
            self.unscale(opt.params)
            opt.step()
        self._good_steps += 1
        if self._good_steps >= self.growth_interval:
            self.scale_value = min(self.scale_value * self.growth_factor, self.max_scale)
            self._good_steps = 0
        return True


class Bf16Cast(Module):
    """Round activations to the bfloat16 grid in the forward pass.

    The rounding is treated as straight-through for gradients (the
    standard mixed-precision semantics: backward flows in the unrounded
    space, master copies stay float32).
    """

    def forward(self, x: Tensor) -> Tensor:
        a = x
        out = bf16_round(a.data)

        def backward(g):
            return ((a, g),)

        def replay():
            np.copyto(out, bf16_round(a.data))

        return Tensor._from_op(out, (a,), backward, "bf16_cast", replay=replay)


def autocast_module(module: Module) -> None:
    """Round a module's parameters to the bf16 grid in place.

    Emulates casting the weights for a bf16 forward; call on a *copy* of
    the master weights (or accept the small parity loss) — the trainer
    keeps float32 masters and re-rounds per step when bf16 is enabled.
    """
    for p in module.parameters():
        p.data[...] = bf16_round(p.data)
