"""Module/Parameter abstractions (the ``torch.nn.Module`` substitute).

A :class:`Module` tracks parameters and sub-modules through attribute
assignment, supports train/eval mode, flat ``state_dict`` round-trips for
checkpointing, and exposes parameter iteration for optimizers and for the
distributed sharding engines (FSDP shards exactly what ``parameters()``
yields, layer by layer — see ``repro.distributed.fsdp``).
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from ..tensor import Tensor

__all__ = ["Parameter", "Module", "ModuleList", "Identity"]


class Parameter(Tensor):
    """A trainable tensor; always requires grad."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all model components."""

    def __init__(self):
        self._parameters: OrderedDict[str, Parameter] = OrderedDict()
        self._modules: OrderedDict[str, Module] = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------ #
    # registration through attribute protocol
    # ------------------------------------------------------------------ #
    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_parameter(self, name: str, param: Parameter) -> None:
        self._parameters[name] = param
        object.__setattr__(self, name, param)

    # ------------------------------------------------------------------ #
    # iteration
    # ------------------------------------------------------------------ #
    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, p in self._parameters.items():
            yield (f"{prefix}{name}", p)
        for mod_name, mod in self._modules.items():
            yield from mod.named_parameters(prefix=f"{prefix}{mod_name}.")

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield (prefix.rstrip("."), self)
        for name, mod in self._modules.items():
            yield from mod.named_modules(prefix=f"{prefix}{name}.")

    def num_parameters(self) -> int:
        """Total scalar parameter count (used for the 9.5M/126M/1B/10B configs)."""
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # train/eval & gradients
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        self.training = mode
        for mod in self._modules.values():
            mod.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # ------------------------------------------------------------------ #
    # checkpoint round-trip
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        """Copy of every parameter keyed by its dotted path."""
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def load_state_dict(self, state: dict[str, np.ndarray], strict: bool = True) -> None:
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if strict and (missing or unexpected):
            raise KeyError(f"state_dict mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, p in own.items():
            if name in state:
                arr = np.asarray(state[name], dtype=np.float32)
                if arr.shape != p.data.shape:
                    raise ValueError(f"shape mismatch for {name}: {arr.shape} vs {p.data.shape}")
                p.data[...] = arr

    # ------------------------------------------------------------------ #
    # call protocol
    # ------------------------------------------------------------------ #
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)


class ModuleList(Module):
    """A list of sub-modules registered in order (e.g. transformer blocks)."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for mod in modules:
            self.append(mod)

    def append(self, mod: Module) -> None:
        self._modules[str(len(self._items))] = mod
        self._items.append(mod)

    def __iter__(self):
        return iter(self._items)

    def __len__(self):
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]

    def forward(self, x):
        for mod in self._items:
            x = mod(x)
        return x


class Identity(Module):
    """No-op module (the disabled adaptive-compression slot in Reslim)."""

    def forward(self, x):
        return x
