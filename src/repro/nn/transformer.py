"""Transformer building blocks: patch embedding and encoder blocks."""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor, add_bias
from . import init
from .attention import MultiHeadSelfAttention
from .layers import LayerNorm, Linear, MLP
from .module import Module, ModuleList, Parameter

__all__ = ["PatchEmbed", "TransformerBlock", "TransformerEncoder", "unpatchify"]


class PatchEmbed(Module):
    """Tokenize an NCHW field into patch embeddings.

    Splits the grid into non-overlapping ``patch x patch`` squares (the
    yellow grid of Fig. 3a) and linearly projects each flattened patch to
    the embedding width.  Output is ``(B, L, D)`` with
    ``L = (H/p) * (W/p)``.
    """

    def __init__(self, in_channels: int, embed_dim: int, patch_size: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.patch_size = patch_size
        self.in_channels = in_channels
        self.embed_dim = embed_dim
        self.proj = Linear(in_channels * patch_size * patch_size, embed_dim, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        b, c, h, w = x.shape
        p = self.patch_size
        if h % p or w % p:
            raise ValueError(f"grid {(h, w)} not divisible by patch size {p}")
        gh, gw = h // p, w // p
        x = x.reshape(b, c, gh, p, gw, p)
        x = x.permute(0, 2, 4, 1, 3, 5)  # (B, gh, gw, C, p, p)
        x = x.reshape(b, gh * gw, c * p * p)
        return self.proj(x)

    def grid_shape(self, h: int, w: int) -> tuple[int, int]:
        return h // self.patch_size, w // self.patch_size


def unpatchify(tokens: Tensor, grid_h: int, grid_w: int, channels: int, patch: int) -> Tensor:
    """Inverse of patch tokenization: (B, L, C*p*p) → (B, C, H, W)."""
    b, l, d = tokens.shape
    if l != grid_h * grid_w:
        raise ValueError(f"token count {l} != grid {grid_h}x{grid_w}")
    if d != channels * patch * patch:
        raise ValueError(f"token dim {d} != channels*patch^2 {channels * patch * patch}")
    x = tokens.reshape(b, grid_h, grid_w, channels, patch, patch)
    x = x.permute(0, 3, 1, 4, 2, 5)
    return x.reshape(b, channels, grid_h * patch, grid_w * patch)


class TransformerBlock(Module):
    """Pre-norm encoder block: LN → MHSA → residual, LN → MLP → residual."""

    def __init__(self, dim: int, num_heads: int, mlp_ratio: float = 4.0,
                 use_flash: bool = True, block_size: int = 128,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.norm1 = LayerNorm(dim)
        self.attn = MultiHeadSelfAttention(dim, num_heads, use_flash=use_flash,
                                           block_size=block_size, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.mlp = MLP(dim, int(dim * mlp_ratio), rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        x = x + self.attn(self.norm1(x))
        x = x + self.mlp(self.norm2(x))
        return x


class TransformerEncoder(Module):
    """Stack of encoder blocks with learned positional embeddings.

    ``max_len`` bounds the positional table; shorter sequences slice it.
    The table is interpolated if a longer sequence arrives, letting one
    model generalize across grid resolutions (a Reslim design goal).
    """

    def __init__(self, dim: int, depth: int, num_heads: int, max_len: int,
                 mlp_ratio: float = 4.0, use_flash: bool = True,
                 block_size: int = 128, checkpoint_blocks: bool = False,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.dim = dim
        self.checkpoint_blocks = checkpoint_blocks
        self.pos_embed = Parameter(init.trunc_normal((1, max_len, dim), rng))
        self.blocks = ModuleList(
            [TransformerBlock(dim, num_heads, mlp_ratio, use_flash, block_size, rng)
             for _ in range(depth)]
        )
        self.norm = LayerNorm(dim)

    def _positional(self, length: int) -> Tensor:
        max_len = self.pos_embed.shape[1]
        if length <= max_len:
            return self.pos_embed[:, :length, :]
        # linear interpolation of the table onto the longer sequence
        src = self.pos_embed.data[0]
        xs = np.linspace(0, max_len - 1, length)
        lo = np.floor(xs).astype(int)
        hi = np.minimum(lo + 1, max_len - 1)
        w = (xs - lo).astype(np.float32)[:, None]
        interp = src[lo] * (1 - w) + src[hi] * w
        return Tensor(interp[None])

    def forward(self, x: Tensor) -> Tensor:
        x = add_bias(x, self._positional(x.shape[1]))
        if self.checkpoint_blocks and self.training:
            from .checkpoint import checkpoint

            for blk in self.blocks:
                x = checkpoint(blk, x)
        else:
            for blk in self.blocks:
                x = blk(x)
        return self.norm(x)
