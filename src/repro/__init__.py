"""ORBIT-2 reproduction: scalable vision foundation models for weather
and climate downscaling.

Subpackages
-----------
``repro.tensor``
    NumPy reverse-mode autograd engine (the PyTorch substitute).
``repro.nn``
    Layers, attention (incl. cache-blocked flash attention), optimizers,
    bf16 mixed precision.
``repro.core``
    The paper's contribution: Reslim, TILES, Canny-guided quad-tree
    compression, the Bayesian downscaling loss, and the upsample-first
    ViT baseline.
``repro.data``
    Synthetic climate data standing in for ERA5 / PRISM / DAYMET / IMERG.
``repro.distributed``
    Simulated multi-GPU cluster: collectives, DDP/FSDP/tensor/Hybrid-OP/
    TILES parallelisms, the Frontier topology, and the analytic
    performance model behind the exascale tables.
``repro.evals``
    R², RMSE, quantile RMSE, SSIM, PSNR, radial power spectra.
``repro.train``
    Trainer, inference runners, FLOP profiler, checkpointing.
``repro.testing``
    The verification layer: gradient checking, parallel-equivalence
    oracles, op fuzzing, collective conformance, golden files.
``repro.obs``
    Observability: hierarchical span tracing on a simulated clock,
    engine/collective instrumentation, metrics, Chrome-trace export.
"""

__version__ = "0.1.0"

from . import core, data, distributed, evals, nn, obs, tensor, testing, train  # noqa: F401

__all__ = [
    "core", "data", "distributed", "evals", "nn", "obs", "tensor", "testing",
    "train", "__version__",
]
