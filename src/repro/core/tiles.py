"""TILES: Tile-wise Efficient Sequence Scaling (Sec. III-B, Fig. 4).

Downscaling is spatially local ("point spread" effect): a fine pixel
depends only on nearby coarse pixels, so long-range attention across the
whole globe can be dropped.  TILES partitions input and output into
spatial tiles, restricts self-attention within each tile (one tile per
GPU in the real system), and stitches the tile outputs back together.
Complexity falls from O(N²) to O(N²/T) — linear in N for fixed tile size.

Halo padding (Fig. 4b) restores context at tile borders: each tile's
input is extended by a fixed-width overlap into its neighbours, and the
corresponding output margin is discarded before stitching, so border
pixels see the same neighbourhood they would in the untiled model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import Module
from ..tensor import Tensor

__all__ = [
    "TileSpec",
    "tile_grid",
    "make_tiles",
    "extract_tile",
    "stitch_tiles",
    "TiledDownscaler",
    "tiled_attention_complexity",
]


@dataclass(frozen=True)
class TileSpec:
    """One tile: core region plus the halo-extended input region.

    Coordinates are in the coarse input grid.  ``hy0 <= y0 < y1 <= hy1``;
    halos are clamped at the image boundary, so edge tiles carry smaller
    halos on their outward sides.
    """

    y0: int
    y1: int
    x0: int
    x1: int
    hy0: int
    hy1: int
    hx0: int
    hx1: int
    row: int
    col: int

    @property
    def core_shape(self) -> tuple[int, int]:
        return (self.y1 - self.y0, self.x1 - self.x0)

    @property
    def halo_shape(self) -> tuple[int, int]:
        return (self.hy1 - self.hy0, self.hx1 - self.hx0)


def tile_grid(n_tiles: int) -> tuple[int, int]:
    """Factor ``n_tiles`` into the most-square (rows, cols) grid."""
    if n_tiles < 1:
        raise ValueError("need at least one tile")
    best = (1, n_tiles)
    for rows in range(1, int(np.sqrt(n_tiles)) + 1):
        if n_tiles % rows == 0:
            best = (rows, n_tiles // rows)
    return best


def _split_axis(extent: int, parts: int) -> list[tuple[int, int]]:
    """(start, stop) spans partitioning ``extent`` into ``parts`` pieces,
    the first ``extent % parts`` pieces one larger (np.array_split order)."""
    base, extra = divmod(extent, parts)
    spans, start = [], 0
    for i in range(parts):
        stop = start + base + (1 if i < extra else 0)
        spans.append((start, stop))
        start = stop
    return spans


def make_tiles(h: int, w: int, n_tiles: int, halo: int = 0,
               uneven: bool = False) -> list[TileSpec]:
    """Partition an (h, w) grid into ``n_tiles`` halo-padded tiles.

    The grid must divide evenly into the (rows, cols) factorization of
    ``n_tiles`` unless ``uneven=True``, which falls back to
    ``np.array_split``-style boundaries (leading rows/columns one pixel
    larger).  Tiles are returned in row-major order either way.
    """
    rows, cols = tile_grid(n_tiles)
    if not uneven and (h % rows or w % cols):
        raise ValueError(f"grid {(h, w)} not divisible into {rows}x{cols} tiles")
    if rows > h or cols > w:
        raise ValueError(f"grid {(h, w)} too small for {rows}x{cols} tiles")
    if halo < 0:
        raise ValueError("halo must be non-negative")
    th, tw = h // rows, w // cols
    if halo >= th or halo >= tw:
        raise ValueError(f"halo {halo} must be smaller than the tile core {(th, tw)}")
    row_spans = _split_axis(h, rows)
    col_spans = _split_axis(w, cols)
    tiles = []
    for r, (y0, y1) in enumerate(row_spans):
        for c, (x0, x1) in enumerate(col_spans):
            tiles.append(TileSpec(
                y0=y0, y1=y1, x0=x0, x1=x1,
                hy0=max(0, y0 - halo), hy1=min(h, y1 + halo),
                hx0=max(0, x0 - halo), hx1=min(w, x1 + halo),
                row=r, col=c,
            ))
    return tiles


def extract_tile(x: Tensor, spec: TileSpec) -> Tensor:
    """Slice the halo-extended tile input from an (B, C, H, W) tensor."""
    return x[:, :, spec.hy0 : spec.hy1, spec.hx0 : spec.hx1]


def stitch_tiles(outputs: list[Tensor], specs: list[TileSpec], factor: int) -> Tensor:
    """Discard halos and reassemble tile outputs into the full fine grid.

    ``outputs[i]`` must be the fine-resolution downscaling of the
    halo-extended tile ``specs[i]``; its core region is cropped out and
    the cores are concatenated back in grid order — fully differentiable.
    """
    if len(outputs) != len(specs):
        raise ValueError("outputs/specs length mismatch")
    rows = max(s.row for s in specs) + 1
    cols = max(s.col for s in specs) + 1
    by_pos = {(s.row, s.col): (o, s) for o, s in zip(outputs, specs)}
    if len(by_pos) != rows * cols:
        raise ValueError("tiles do not form a complete grid")
    row_tensors = []
    for r in range(rows):
        cores = []
        for c in range(cols):
            out, s = by_pos[(r, c)]
            top = (s.y0 - s.hy0) * factor
            left = (s.x0 - s.hx0) * factor
            ch, cw = s.core_shape
            expected_h = (s.hy1 - s.hy0) * factor
            expected_w = (s.hx1 - s.hx0) * factor
            if out.shape[-2] != expected_h or out.shape[-1] != expected_w:
                raise ValueError(
                    f"tile output {out.shape[-2:]} != expected {(expected_h, expected_w)}"
                )
            cores.append(out[:, :, top : top + ch * factor, left : left + cw * factor])
        row_tensors.append(Tensor.concatenate(cores, axis=3))
    return Tensor.concatenate(row_tensors, axis=2)


def tiled_attention_complexity(n_tokens: int, n_tiles: int) -> float:
    """Self-attention cost O(N²/T): pairwise interactions within tiles only."""
    if n_tokens < 0 or n_tiles < 1:
        raise ValueError("invalid token/tile counts")
    return n_tokens**2 / n_tiles


class TiledDownscaler(Module):
    """Run a downscaling model tile-by-tile with halo padding.

    In the real system each tile lives on a separate GPU (a TILES
    sequence-parallel group); here tiles run sequentially through the
    same model instance, which is mathematically identical to the
    synchronous multi-GPU execution (gradients sum over tiles either
    way — the all-reduce is exercised separately in
    ``repro.distributed.sequence_parallel``).

    Parameters
    ----------
    model:
        Any module mapping (B, C, h, w) → (B, C_out, h*factor, w*factor).
    n_tiles:
        Number of spatial tiles per sample.
    halo:
        Halo width in coarse pixels.  Must keep the halo-extended tiles
        divisible by the model's patch size; callers typically use a
        multiple of ``patch_size``.
    uneven:
        Allow grids that do not divide evenly into the tile layout
        (``np.array_split`` boundaries).  Only usable with patch-free
        models, since tile shapes then differ.
    """

    def __init__(self, model: Module, n_tiles: int, halo: int, factor: int,
                 uneven: bool = False):
        super().__init__()
        if n_tiles < 1:
            raise ValueError("n_tiles must be >= 1")
        self.model = model
        self.n_tiles = n_tiles
        self.halo = halo
        self.factor = factor
        self.uneven = uneven
        self.last_tile_sequence_lengths: list[int] = []

    def forward(self, x: Tensor) -> Tensor:
        b, c, h, w = x.shape
        if self.n_tiles == 1:
            return self.model(x)
        specs = make_tiles(h, w, self.n_tiles, self.halo, uneven=self.uneven)
        outputs = []
        self.last_tile_sequence_lengths = []
        for spec in specs:
            tile_in = extract_tile(x, spec)
            out = self.model(tile_in)
            seq = getattr(self.model, "last_sequence_length", None)
            if seq is not None:
                self.last_tile_sequence_lengths.append(seq)
            outputs.append(out)
        return stitch_tiles(outputs, specs, self.factor)
