"""Swin Transformer baseline (Sec. II, "Architecture solutions").

The paper contrasts Reslim with hierarchical shifted-window transformers:
Swin computes attention in non-overlapping local windows (linear cost)
and recovers global context through a hierarchy of patch-merging stages —
but the hierarchy depth must scale with resolution, the model grows with
the hierarchy, and reported sequence scaling tops out at 147K tokens.

This module implements the architecture faithfully enough to demonstrate
those structural properties:

* window attention with cyclic-shifted windows on alternating blocks
  (the longitude wrap of the cyclic roll is physically correct on global
  lat/lon grids, so no attention mask is needed there; latitude wrap is
  the standard small approximation);
* patch merging (2× spatial downsample, 2× width), doubling parameters
  per stage;
* a Swin-based upsample-first downscaler comparable to
  :class:`~repro.core.vit.UpsampleViT`;
* the accounting functions behind the paper's criticism —
  ``swin_stages_required`` (hierarchy ∝ log resolution) and
  ``swin_param_growth`` (model size ∝ hierarchy).
"""

from __future__ import annotations

import numpy as np

from ..nn import LayerNorm, Linear, MLP, Module, ModuleList, PatchEmbed, unpatchify
from ..nn.attention import MultiHeadSelfAttention
from ..tensor import Tensor, bilinear_upsample, gelu
from .config import ModelConfig

__all__ = [
    "WindowAttention",
    "SwinBlock",
    "PatchMerging",
    "SwinDownscaler",
    "swin_stages_required",
    "swin_param_growth",
    "SWIN_PAPER_MAX_TOKENS",
]

#: the Swin-V2 sequence-scaling limit the paper cites
SWIN_PAPER_MAX_TOKENS = 147_000


def _roll2d(x: Tensor, shift_h: int, shift_w: int) -> Tensor:
    """Differentiable cyclic roll of a (B, H, W, D) tensor."""
    if shift_h:
        s = shift_h % x.shape[1]
        if s:
            x = Tensor.concatenate([x[:, -s:], x[:, :-s]], axis=1)
    if shift_w:
        s = shift_w % x.shape[2]
        if s:
            x = Tensor.concatenate([x[:, :, -s:], x[:, :, :-s]], axis=2)
    return x


class WindowAttention(Module):
    """MHSA within non-overlapping ``window x window`` token tiles.

    Cost is O(N · w²) instead of O(N²): the linear-attention mechanism
    Swin trades global context for.
    """

    def __init__(self, dim: int, num_heads: int, window: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if window < 1:
            raise ValueError("window must be >= 1")
        self.window = window
        self.attn = MultiHeadSelfAttention(dim, num_heads, use_flash=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """(B, gh, gw, D) → same shape; attention confined to windows."""
        b, gh, gw, d = x.shape
        w = self.window
        if gh % w or gw % w:
            raise ValueError(f"token grid {(gh, gw)} not divisible by window {w}")
        nh, nw = gh // w, gw // w
        tiles = x.reshape(b, nh, w, nw, w, d).permute(0, 1, 3, 2, 4, 5)
        tiles = tiles.reshape(b * nh * nw, w * w, d)
        tiles = self.attn(tiles)
        tiles = tiles.reshape(b, nh, nw, w, w, d).permute(0, 1, 3, 2, 4, 5)
        return tiles.reshape(b, gh, gw, d)


class SwinBlock(Module):
    """Pre-norm window-attention block, optionally with shifted windows.

    Alternating blocks shift the window grid by half a window (cyclic
    roll), letting information cross window borders — Swin's substitute
    for global attention.
    """

    def __init__(self, dim: int, num_heads: int, window: int, shifted: bool,
                 mlp_ratio: float = 4.0, rng: np.random.Generator | None = None):
        super().__init__()
        self.shifted = shifted
        self.shift = window // 2 if shifted else 0
        self.norm1 = LayerNorm(dim)
        self.attn = WindowAttention(dim, num_heads, window, rng=rng)
        self.norm2 = LayerNorm(dim)
        self.mlp = MLP(dim, int(dim * mlp_ratio), rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        h = x
        y = self.norm1(x)
        if self.shift:
            y = _roll2d(y, -self.shift, -self.shift)
        y = self.attn(y)
        if self.shift:
            y = _roll2d(y, self.shift, self.shift)
        x = h + y
        return x + self.mlp(self.norm2(x))


class PatchMerging(Module):
    """2x spatial downsample: concatenate 2x2 neighbours, project 4d → 2d.

    Each merging stage doubles the channel width — the mechanism by which
    "Swin Transformer's model size grows with the architecture hierarchy"
    (Sec. II).
    """

    def __init__(self, dim: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.norm = LayerNorm(4 * dim)
        self.reduce = Linear(4 * dim, 2 * dim, bias=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        b, gh, gw, d = x.shape
        if gh % 2 or gw % 2:
            raise ValueError(f"grid {(gh, gw)} not divisible by 2 for merging")
        x = x.reshape(b, gh // 2, 2, gw // 2, 2, d)
        x = x.permute(0, 1, 3, 2, 4, 5).reshape(b, gh // 2, gw // 2, 4 * d)
        return self.reduce(self.norm(x))


class SwinDownscaler(Module):
    """Upsample-first downscaler with a Swin hierarchy (the Sec. II foil).

    Structure: bilinear upsample → patch embed → ``n_stages`` of
    [SwinBlock, shifted SwinBlock, PatchMerging] → decoder head from the
    coarsened deep grid back to pixels.  The hierarchy depth needed for
    global context grows with resolution (see
    :func:`swin_stages_required`), unlike Reslim's flat design.
    """

    def __init__(self, config: ModelConfig, in_channels: int, out_channels: int,
                 factor: int, window: int = 4, n_stages: int = 2,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        if n_stages < 1:
            raise ValueError("need at least one stage")
        self.config = config
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.factor = factor
        self.window = window
        self.n_stages = n_stages
        d = config.embed_dim
        self.patch_embed = PatchEmbed(in_channels, d, config.patch_size, rng=rng)
        self.stages = ModuleList()
        self.mergers = ModuleList()
        dim = d
        for s in range(n_stages):
            self.stages.append(SwinBlock(dim, config.num_heads, window, False, rng=rng))
            self.stages.append(SwinBlock(dim, config.num_heads, window, True, rng=rng))
            if s < n_stages - 1:
                self.mergers.append(PatchMerging(dim, rng=rng))
                dim *= 2
        self.final_dim = dim
        self.norm = LayerNorm(dim)
        # decoder: deep grid is coarsened by 2^(n_stages-1); project each
        # deep token to the pixels it covers
        self.deep_stride = 2 ** (n_stages - 1)
        pix = config.patch_size * self.deep_stride
        self.head = Linear(dim, out_channels * pix * pix, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        b, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        out_h, out_w = h * self.factor, w * self.factor
        up = bilinear_upsample(x, out_h, out_w)
        tokens = self.patch_embed(up)                    # (B, L, D)
        gh, gw = self.patch_embed.grid_shape(out_h, out_w)
        grid = tokens.reshape(b, gh, gw, self.config.embed_dim)
        stage_blocks = list(self.stages)
        mergers = list(self.mergers)
        for s in range(self.n_stages):
            grid = stage_blocks[2 * s](grid)
            grid = stage_blocks[2 * s + 1](grid)
            if s < self.n_stages - 1:
                grid = mergers[s](grid)
        grid = self.norm(grid)
        bh, bw = grid.shape[1], grid.shape[2]
        deep_tokens = grid.reshape(b, bh * bw, self.final_dim)
        out_tokens = self.head(deep_tokens)
        pix = self.config.patch_size * self.deep_stride
        return unpatchify(out_tokens, bh, bw, self.out_channels, pix)


def swin_stages_required(grid_tokens: int, window: int) -> int:
    """Merging stages needed until one window spans the whole grid.

    Global context requires the deepest stage's window to cover the full
    (coarsened) token grid; each merge halves the grid edge, so the
    hierarchy depth grows logarithmically with resolution — and cannot be
    fixed for a foundation model serving many resolutions (Sec. II).
    """
    if grid_tokens < 1 or window < 1:
        raise ValueError("positive sizes required")
    edge = int(np.sqrt(grid_tokens))
    stages = 1
    while edge > window:
        edge = (edge + 1) // 2
        stages += 1
    return stages


def swin_param_growth(base_dim: int, n_stages: int, mlp_ratio: float = 4.0) -> int:
    """Approximate encoder parameters of an ``n_stages`` hierarchy.

    Width doubles per stage, so per-stage cost quadruples: the total is
    dominated by the last stage — model size is tied to hierarchy depth,
    hence to resolution.
    """
    total = 0
    dim = base_dim
    for s in range(n_stages):
        per_block = (4 + 2 * mlp_ratio) * dim * dim
        total += int(2 * per_block)  # two blocks per stage
        if s < n_stages - 1:
            total += 4 * dim * 2 * dim  # merging projection
            dim *= 2
    return total
