"""Reslim: the Residual Slim ViT architecture (Fig. 2, Sec. III-A).

The main ViT path never upsamples: each low-resolution physical variable
is tokenized separately, a cross-attention module collapses the variable
dimension into one token stream, a learnable resolution embedding makes
predictions resolution-aware, an optional quad-tree compressor shrinks
the sequence further, and a conv+linear decoder reconstructs the
high-resolution output directly from low-resolution tokens.  A residual
convolutional path re-introduces upsampling *outside* the transformer
(linear cost) so the ViT only learns the residual correction — the
mechanism that controls the ill-posed inverse problem's uncertainty.
"""

from __future__ import annotations

import numpy as np

from ..nn import (
    Conv2d,
    CrossAttention,
    Linear,
    Module,
    Parameter,
    TransformerEncoder,
    PatchEmbed,
    unpatchify,
)
from ..nn import init as nn_init
from ..tensor import Tensor, bilinear_upsample, gelu
from .compression import QuadTreeCompressor
from .config import ModelConfig

__all__ = ["Reslim", "reslim_sequence_length", "MAX_FACTOR_LOG2"]

MAX_FACTOR_LOG2 = 6  # resolution embeddings for factors 1, 2, 4, ..., 64


def reslim_sequence_length(h: int, w: int, patch: int, compression: float = 1.0) -> int:
    """Main-path token count: the COARSE grid patched, then compressed.

    Contrast with :func:`~repro.core.vit.vit_sequence_length`, which
    patches the fine grid — larger by ``factor^2``.
    """
    return max(1, int((h // patch) * (w // patch) / compression))


class ResidualPath(Module):
    """The lightweight convolutional residual branch.

    1×1 channel mixing at coarse resolution, bilinear upsampling to the
    target grid, then a 3×3 refinement conv.  All operations are linear
    in the output size, so moving the upsample here (instead of before
    the ViT) removes the quadratic attention blow-up.
    """

    def __init__(self, in_channels: int, out_channels: int, factor: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.factor = factor
        self.select = Conv2d(in_channels, out_channels, 1, rng=rng)
        self.refine = Conv2d(out_channels, out_channels, 3, padding=1, rng=rng)
        # refine starts as a no-op so the branch begins as pure
        # channel-mixed interpolation
        self.refine.weight.data[...] = 0.0
        for c in range(out_channels):
            self.refine.weight.data[c, c, 1, 1] = 1.0

    def forward(self, x: Tensor, factor: int | None = None) -> Tensor:
        factor = factor or self.factor
        coarse = self.select(x)
        _, _, h, w = coarse.shape
        up = bilinear_upsample(coarse, h * factor, w * factor)
        return self.refine(up)


class VariableAggregator(Module):
    """Cross-attention over the variable axis (Fig. 2, purple block).

    Per spatial token, the query is the mean of the V variable
    embeddings and the context is the V embeddings themselves; attention
    runs over a length-V sequence, so cost is linear in the token count
    and the output drops the variable dimension entirely (the 18–23×
    sequence reduction credited in Sec. V-B).
    """

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator | None = None):
        super().__init__()
        self.attn = CrossAttention(dim, num_heads, rng=rng)

    def forward(self, var_tokens: Tensor) -> Tensor:
        """(B, V, L, D) → (B, L, D)."""
        b, v, l, d = var_tokens.shape
        context = var_tokens.permute(0, 2, 1, 3).reshape(b * l, v, d)
        query = context.mean(axis=1, keepdims=True)  # (B*L, 1, D)
        fused = self.attn(query, context)            # (B*L, 1, D)
        return fused.reshape(b, l, d)


class Reslim(Module):
    """The full Reslim downscaler.

    Parameters
    ----------
    config:
        Width/depth/heads; ``patch_size`` patches the COARSE grid.
    in_channels / out_channels:
        Physical variable counts.
    factor:
        Default spatial refinement (4X in the paper's tasks).
    compression:
        ``None`` disables adaptive spatial compression (identity slot);
        otherwise the quad-tree density threshold in (0, 1).
    max_tokens:
        Positional-table capacity for the encoder.
    """

    def __init__(self, config: ModelConfig, in_channels: int, out_channels: int,
                 factor: int, compression: float | None = None,
                 compression_max_patch: int = 8, max_tokens: int = 4096,
                 factors: tuple[int, ...] | None = None,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.factors = tuple(sorted(set(factors or (factor,))))
        if factor not in self.factors:
            raise ValueError(f"default factor {factor} not in factors {self.factors}")
        for f in self.factors:
            if f < 1 or f > 2**MAX_FACTOR_LOG2 or (f & (f - 1)) != 0:
                raise ValueError(f"factor {f} must be a power of two within range")
        self.config = config
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.factor = factor
        self.compression_threshold = compression
        self.compression_max_patch = compression_max_patch
        d = config.embed_dim

        # shared single-channel tokenizer applied to every variable
        self.tokenizer = PatchEmbed(1, d, config.patch_size, rng=rng)
        self.var_embed = Parameter(nn_init.trunc_normal((in_channels, 1, d), rng))
        self.aggregator = VariableAggregator(d, config.num_heads, rng=rng)
        self.resolution_embed = Parameter(
            nn_init.trunc_normal((MAX_FACTOR_LOG2 + 1, d), rng)
        )
        # projection to image space used to build the quad-tree
        self.feature_proj = Linear(d, 1, rng=rng)
        self.encoder = TransformerEncoder(
            d, config.depth, config.num_heads, max_len=max_tokens,
            mlp_ratio=config.mlp_ratio, use_flash=config.use_flash,
            block_size=config.flash_block, rng=rng,
        )
        # decoder: conv in token-grid space + one linear pixel-projection
        # head per supported refinement factor (resolution-aware decoding;
        # the shared trunk plus the resolution embedding is what lets one
        # foundation model serve multiple output resolutions)
        self.decoder_conv = Conv2d(d, d, 3, padding=1, rng=rng)
        self._heads: dict[int, Linear] = {}
        for f in self.factors:
            head = Linear(d, out_channels * (config.patch_size * f) ** 2, rng=rng)
            # zero-init: at step 0 the model IS the residual path
            head.weight.data[...] = 0.0
            head.bias.data[...] = 0.0
            self._modules[f"head_x{f}"] = head
            self._heads[f] = head
        # default-factor alias; bypass module registration to avoid
        # double-counting the head's parameters
        object.__setattr__(self, "head", self._heads[factor])
        self.residual = ResidualPath(in_channels, out_channels, factor, rng=rng)
        self.last_sequence_length: int | None = None
        self.last_compression_ratio: float = 1.0

    # ------------------------------------------------------------------ #
    def _resolution_token(self, factor: int) -> Tensor:
        idx = int(np.log2(factor))
        if 2**idx != factor:
            raise ValueError(f"factor must be a power of two, got {factor}")
        return self.resolution_embed[idx : idx + 1, :].reshape(1, 1, -1)

    def forward(self, x: Tensor, factor: int | None = None) -> Tensor:
        """(B, C_in, h, w) coarse → (B, C_out, h*factor, w*factor)."""
        factor = factor or self.factor
        if factor not in self._heads:
            raise ValueError(
                f"no decoder head for factor {factor}; built for {self.factors}"
            )
        b, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        p = self.config.patch_size
        gh, gw = h // p, w // p
        d = self.config.embed_dim

        # --- tokenize each variable with the shared tokenizer ------------
        per_var = x.reshape(b * c, 1, h, w)
        tokens = self.tokenizer(per_var)                    # (B*C, L, D)
        tokens = tokens.reshape(b, c, gh * gw, d)
        tokens = tokens + self.var_embed                    # variable identity
        # --- aggregate the variable dimension ----------------------------
        fused = self.aggregator(tokens)                     # (B, L, D)
        fused = fused + self._resolution_token(factor)

        # --- optional adaptive spatial compression ------------------------
        compressor = None
        if self.compression_threshold is not None:
            feature_img = self.feature_proj(fused).data[:, :, 0].mean(axis=0)
            feature_img = feature_img.reshape(gh, gw)
            compressor = QuadTreeCompressor.from_feature_image(
                feature_img, patch=1,
                max_patch=min(self.compression_max_patch, gh, gw),
                density_threshold=self.compression_threshold,
            )
            grid = fused.transpose(1, 2).reshape(b, d, gh, gw)
            fused = compressor.compress(grid)               # (B, L', D)
            self.last_compression_ratio = compressor.compression_ratio
        else:
            self.last_compression_ratio = 1.0
        self.last_sequence_length = fused.shape[1]

        # --- ViT training blocks ------------------------------------------
        encoded = self.encoder(fused)

        # --- decompression + decoder --------------------------------------
        if compressor is not None:
            grid = compressor.decompress(encoded, channels=d)  # (B, D, gh, gw)
        else:
            grid = encoded.transpose(1, 2).reshape(b, d, gh, gw)
        grid = gelu(self.decoder_conv(grid))
        dec_tokens = grid.reshape(b, d, gh * gw).transpose(1, 2)
        out_tokens = self._heads[factor](dec_tokens)        # (B, L, C*(p*f)^2)
        main = unpatchify(out_tokens, gh, gw, self.out_channels, p * factor)

        # --- residual convolutional path ----------------------------------
        return main + self.residual(x, factor)

    def sequence_length(self, h: int, w: int) -> int:
        """Pre-compression main-path token count for a coarse (h, w) input."""
        return reslim_sequence_length(h, w, self.config.patch_size)
