"""The upsample-first ViT downscaling baseline (Fig. 1).

This is the Prithvi/ClimateLearn-style architecture ORBIT-2 compares
against: coarse inputs are bilinearly upsampled to the target resolution
*before* the transformer, multi-variable channels are aggregated by a
shallow convolution, and the ViT runs on the full fine-resolution token
grid — hence the quadratic sequence blow-up that Reslim eliminates.
"""

from __future__ import annotations

import numpy as np

from ..nn import Conv2d, Linear, Module, TransformerEncoder, PatchEmbed, unpatchify
from ..tensor import Tensor, bilinear_upsample, gelu
from .config import ModelConfig

__all__ = ["UpsampleViT", "vit_sequence_length"]


def vit_sequence_length(out_h: int, out_w: int, patch: int) -> int:
    """Token count of the upsample-first baseline: the FINE grid patched."""
    return (out_h // patch) * (out_w // patch)


class UpsampleViT(Module):
    """Baseline downscaler: upsample → conv aggregate → ViT → project back.

    Parameters
    ----------
    config:
        Width/depth/heads; ``config.patch_size`` patches the *fine* grid.
    in_channels, out_channels:
        Physical variable counts (23 in / 18 or 3 out in the paper).
    factor:
        Spatial refinement (4X in all Table-I tasks).
    max_tokens:
        Capacity of the positional-embedding table.
    """

    def __init__(self, config: ModelConfig, in_channels: int, out_channels: int,
                 factor: int, max_tokens: int = 4096,
                 rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.config = config
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.factor = factor
        d = config.embed_dim
        # shallow convolutional variable aggregation (Fig. 1, purple)
        self.aggregate = Conv2d(in_channels, in_channels, 3, padding=1, rng=rng)
        self.patch_embed = PatchEmbed(in_channels, d, config.patch_size, rng=rng)
        self.encoder = TransformerEncoder(
            d, config.depth, config.num_heads, max_len=max_tokens,
            mlp_ratio=config.mlp_ratio, use_flash=config.use_flash,
            block_size=config.flash_block, rng=rng,
        )
        self.head = Linear(d, out_channels * config.patch_size**2, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        """(B, C_in, h, w) coarse → (B, C_out, h*factor, w*factor) fine."""
        b, c, h, w = x.shape
        if c != self.in_channels:
            raise ValueError(f"expected {self.in_channels} channels, got {c}")
        out_h, out_w = h * self.factor, w * self.factor
        up = bilinear_upsample(x, out_h, out_w)          # the costly step
        feats = gelu(self.aggregate(up))
        tokens = self.patch_embed(feats)                 # (B, L_fine, D)
        tokens = self.encoder(tokens)
        tokens = self.head(tokens)
        gh, gw = self.patch_embed.grid_shape(out_h, out_w)
        return unpatchify(tokens, gh, gw, self.out_channels, self.config.patch_size)

    def sequence_length(self, h: int, w: int) -> int:
        """Tokens processed for a coarse (h, w) input."""
        return vit_sequence_length(h * self.factor, w * self.factor,
                                   self.config.patch_size)
