"""Model configurations (Sec. IV "Model Configuration").

The paper's four sizes, reproduced exactly for FLOP/memory accounting:

=======  =========  ======  =====
name     embed_dim  layers  heads
=======  =========  ======  =====
9.5M     256        6       4
126M     1024       8       16
1B       3072       8       24
10B      8192       11      32
=======  =========  ======  =====

``scaled(...)`` derives width-reduced variants with the same depth/head
structure so the architecture code paths can be *trained* on one CPU core
while the full-size configs drive the analytic performance model.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["ModelConfig", "PAPER_CONFIGS", "transformer_param_count"]


@dataclass(frozen=True)
class ModelConfig:
    """Architecture hyper-parameters shared by ViT and Reslim."""

    name: str
    embed_dim: int
    depth: int
    num_heads: int
    patch_size: int = 2        # the paper tokenizes with 2x2 patches
    mlp_ratio: float = 4.0
    use_flash: bool = True
    flash_block: int = 128

    def __post_init__(self):
        if self.embed_dim % self.num_heads:
            raise ValueError(
                f"embed_dim {self.embed_dim} not divisible by heads {self.num_heads}"
            )
        if min(self.embed_dim, self.depth, self.num_heads, self.patch_size) <= 0:
            raise ValueError("all dimensions must be positive")

    def scaled(self, embed_dim: int, depth: int | None = None,
               num_heads: int | None = None, name: str | None = None) -> "ModelConfig":
        """A reduced-width variant preserving the block structure."""
        return replace(
            self,
            name=name or f"{self.name}-scaled{embed_dim}",
            embed_dim=embed_dim,
            depth=depth if depth is not None else self.depth,
            num_heads=num_heads if num_heads is not None else self.num_heads,
        )


#: the paper's four configurations keyed by their reported parameter count
PAPER_CONFIGS: dict[str, ModelConfig] = {
    "9.5M": ModelConfig("9.5M", embed_dim=256, depth=6, num_heads=4),
    "126M": ModelConfig("126M", embed_dim=1024, depth=8, num_heads=16),
    "1B": ModelConfig("1B", embed_dim=3072, depth=8, num_heads=24),
    "10B": ModelConfig("10B", embed_dim=8192, depth=11, num_heads=32),
}


def transformer_param_count(config: ModelConfig, in_channels: int = 23,
                            out_channels: int = 18, max_len: int = 4096) -> int:
    """Analytic parameter count of the encoder stack + embeddings.

    Per block: QKV (3d²+3d) + output proj (d²+d) + MLP (2·r·d² + (r+1)d)
    + 2 LayerNorms (4d); plus patch embedding, positional table, and a
    linear decoder head.  Validated against the instantiated models in
    tests (exact for the ViT baseline).
    """
    d = config.embed_dim
    r = config.mlp_ratio
    per_block = (3 * d * d + 3 * d) + (d * d + d) + int(2 * r * d * d) + int((r + 1) * d) + 4 * d
    p = config.patch_size
    patch_embed = (in_channels * p * p) * d + d
    pos = max_len * d
    head = d * (out_channels * p * p) + out_channels * p * p
    final_norm = 2 * d
    return config.depth * per_block + patch_embed + pos + head + final_norm
