"""Adaptive spatial compression via Canny-guided quad-trees (Sec. III-A).

After Reslim aggregates the variable dimension, the feature embedding is
projected back to image space and recursively partitioned into spatial
quadrants.  A quadrant keeps subdividing while its Canny edge density
exceeds a threshold, stopping at a minimum patch size — so feature-rich
regions get many small patches (fine-grained learning) and smooth regions
get few large ones (Fig. 3).  Every leaf becomes ONE token: large leaves
are block-averaged down to the base patch size, so the sequence length
equals the number of leaves instead of the uniform patch count.

The compression/decompression pair is linear, differentiable, and exactly
shape-inverse; the achieved ``compression_ratio`` is what Table II(b)
sweeps (8x/16x/32x).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..tensor import Tensor
from .canny import canny_edges, edge_density

__all__ = ["QuadLeaf", "build_quadtree", "QuadTreeCompressor", "uniform_token_count"]


@dataclass(frozen=True)
class QuadLeaf:
    """One quad-tree leaf: a square region ``[y0:y0+size, x0:x0+size]``."""

    y0: int
    x0: int
    size: int


def uniform_token_count(h: int, w: int, patch: int) -> int:
    """Sequence length under conventional uniform patching (Fig. 3a)."""
    return (h // patch) * (w // patch)


def build_quadtree(
    feature_image: np.ndarray,
    min_patch: int,
    max_patch: int,
    density_threshold: float = 0.05,
    canny_sigma: float = 1.0,
) -> list[QuadLeaf]:
    """Partition a 2-D feature image into adaptive square leaves.

    The image is first covered by root cells of ``max_patch``; each cell
    recursively splits into four quadrants while its edge density exceeds
    ``density_threshold`` and it is larger than ``min_patch``.  Leaves are
    returned in row-major order of their origins (deterministic).
    """
    feature_image = np.asarray(feature_image)
    if feature_image.ndim != 2:
        raise ValueError("feature image must be 2-D")
    h, w = feature_image.shape
    for name, p in (("min_patch", min_patch), ("max_patch", max_patch)):
        if p <= 0 or (p & (p - 1)) != 0:
            raise ValueError(f"{name} must be a positive power of two, got {p}")
    if max_patch < min_patch:
        raise ValueError("max_patch must be >= min_patch")
    if h % max_patch or w % max_patch:
        raise ValueError(f"grid {(h, w)} not divisible by max_patch {max_patch}")

    edges = canny_edges(feature_image, sigma=canny_sigma)
    leaves: list[QuadLeaf] = []

    def recurse(y0: int, x0: int, size: int) -> None:
        if size <= min_patch:
            leaves.append(QuadLeaf(y0, x0, size))
            return
        region = edges[y0 : y0 + size, x0 : x0 + size]
        if edge_density(region) <= density_threshold:
            leaves.append(QuadLeaf(y0, x0, size))
            return
        half = size // 2
        recurse(y0, x0, half)
        recurse(y0, x0 + half, half)
        recurse(y0 + half, x0, half)
        recurse(y0 + half, x0 + half, half)

    for y0 in range(0, h, max_patch):
        for x0 in range(0, w, max_patch):
            recurse(y0, x0, max_patch)
    return leaves


class QuadTreeCompressor:
    """Compress/decompress NCHW tensors through a fixed leaf layout.

    Built once per sample from the aggregated feature image (the CPU-side
    quad-tree construction of Fig. 5); then applied to any tensor on the
    same grid.  ``compress`` yields tokens ``(B, L, C*p*p)`` with
    ``L = len(leaves)``; ``decompress`` reconstructs the grid by
    nearest-neighbour fill of each leaf from its token patch.
    """

    def __init__(self, leaves: list[QuadLeaf], grid_shape: tuple[int, int], patch: int):
        if not leaves:
            raise ValueError("empty leaf list")
        self.leaves = list(leaves)
        self.grid_shape = tuple(grid_shape)
        self.patch = int(patch)
        h, w = self.grid_shape
        cover = np.zeros((h, w), dtype=np.int32)
        for leaf in self.leaves:
            if leaf.size < patch:
                raise ValueError(f"leaf size {leaf.size} below patch {patch}")
            cover[leaf.y0 : leaf.y0 + leaf.size, leaf.x0 : leaf.x0 + leaf.size] += 1
        if not np.all(cover == 1):
            raise ValueError("leaves must tile the grid exactly once")

    @classmethod
    def from_feature_image(cls, feature_image: np.ndarray, patch: int,
                           max_patch: int | None = None,
                           density_threshold: float = 0.05) -> "QuadTreeCompressor":
        h, w = feature_image.shape
        if max_patch is None:
            max_patch = int(min(h, w))
            while (max_patch & (max_patch - 1)) != 0 or h % max_patch or w % max_patch:
                max_patch //= 2
                if max_patch < patch:
                    max_patch = patch
                    break
        leaves = build_quadtree(feature_image, patch, max_patch, density_threshold)
        return cls(leaves, (h, w), patch)

    # ------------------------------------------------------------------ #
    @property
    def num_tokens(self) -> int:
        return len(self.leaves)

    @property
    def compression_ratio(self) -> float:
        """Uniform-token count divided by adaptive-token count (>= 1)."""
        h, w = self.grid_shape
        return uniform_token_count(h, w, self.patch) / self.num_tokens

    # ------------------------------------------------------------------ #
    def compress(self, x: Tensor) -> Tensor:
        """(B, C, H, W) → (B, L, C*p*p); each leaf pooled to a p×p patch."""
        b, c, h, w = x.shape
        if (h, w) != self.grid_shape:
            raise ValueError(f"grid mismatch: {(h, w)} vs {self.grid_shape}")
        p = self.patch
        leaves = self.leaves
        data = x.data
        out = np.empty((b, len(leaves), c * p * p), dtype=np.float32)
        for i, leaf in enumerate(leaves):
            region = data[:, :, leaf.y0 : leaf.y0 + leaf.size, leaf.x0 : leaf.x0 + leaf.size]
            f = leaf.size // p
            pooled = region.reshape(b, c, p, f, p, f).mean(axis=(3, 5))
            out[:, i, :] = pooled.reshape(b, c * p * p)

        def backward(g):
            gx = np.zeros_like(data)
            for i, leaf in enumerate(leaves):
                f = leaf.size // p
                gp = g[:, i, :].reshape(b, c, p, 1, p, 1) / (f * f)
                gp = np.broadcast_to(gp, (b, c, p, f, p, f)).reshape(b, c, leaf.size, leaf.size)
                gx[:, :, leaf.y0 : leaf.y0 + leaf.size, leaf.x0 : leaf.x0 + leaf.size] += gp
            return ((x, gx),)

        return Tensor._from_op(out, (x,), backward, "quadtree_compress")

    def decompress(self, tokens: Tensor, channels: int) -> Tensor:
        """(B, L, C*p*p) → (B, C, H, W) by nearest-neighbour leaf fill."""
        b, l, d = tokens.shape
        if l != len(self.leaves):
            raise ValueError(f"token count {l} != leaves {len(self.leaves)}")
        p = self.patch
        if d != channels * p * p:
            raise ValueError(f"token dim {d} != channels*patch^2 {channels * p * p}")
        h, w = self.grid_shape
        leaves = self.leaves
        data = tokens.data
        out = np.zeros((b, channels, h, w), dtype=np.float32)
        for i, leaf in enumerate(leaves):
            f = leaf.size // p
            patch_img = data[:, i, :].reshape(b, channels, p, p)
            filled = np.repeat(np.repeat(patch_img, f, axis=2), f, axis=3)
            out[:, :, leaf.y0 : leaf.y0 + leaf.size, leaf.x0 : leaf.x0 + leaf.size] = filled

        def backward(g):
            gt = np.empty((b, l, d), dtype=np.float32)
            for i, leaf in enumerate(leaves):
                f = leaf.size // p
                region = g[:, :, leaf.y0 : leaf.y0 + leaf.size, leaf.x0 : leaf.x0 + leaf.size]
                pooled = region.reshape(b, channels, p, f, p, f).sum(axis=(3, 5))
                gt[:, i, :] = pooled.reshape(b, channels * p * p)
            return ((tokens, gt),)

        return Tensor._from_op(out, (tokens,), backward, "quadtree_decompress")
