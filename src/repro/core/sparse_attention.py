"""Sparse-attention baselines (the MaxViT-style foil of Sec. II).

"Other sparse attention architectures, such as MaxViT, attempt to
mitigate computational cost by sampling self-attention computations.
While this reduces complexity, it comes at the expense of accuracy
degradation when the sampling ratio is too high, and it does not address
the fundamental quadratic complexity long-sequence problem."

Two representatives are implemented on the token-grid layout:

* **Axial attention** — full attention along rows, then along columns:
  O(N·(H+W)) cost, global reach in two hops, but no direct diagonal
  interactions.
* **Strided (grid) attention** — MaxViT's grid branch: each token attends
  to the tokens at its position modulo a stride; sparsity grows with the
  stride and so does the information loss.

Both are exact attention over a *subset* of pairs, so their cost and
their blind spots can be measured precisely (tests +
``sparse_attention_cost``).
"""

from __future__ import annotations

import numpy as np

from ..nn.attention import MultiHeadSelfAttention
from ..nn.module import Module
from ..tensor import Tensor

__all__ = ["AxialAttention", "GridAttention", "sparse_attention_cost"]


class AxialAttention(Module):
    """Row-wise then column-wise attention over a (B, gh, gw, D) grid."""

    def __init__(self, dim: int, num_heads: int, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng(0)
        self.row_attn = MultiHeadSelfAttention(dim, num_heads, use_flash=False, rng=rng)
        self.col_attn = MultiHeadSelfAttention(dim, num_heads, use_flash=False, rng=rng)

    def forward(self, x: Tensor) -> Tensor:
        b, gh, gw, d = x.shape
        # rows: each of the B*gh rows is a length-gw sequence
        rows = x.reshape(b * gh, gw, d)
        rows = self.row_attn(rows).reshape(b, gh, gw, d)
        # columns: transpose so each of the B*gw columns is a sequence
        cols = rows.permute(0, 2, 1, 3).reshape(b * gw, gh, d)
        cols = self.col_attn(cols).reshape(b, gw, gh, d)
        return cols.permute(0, 2, 1, 3)


class GridAttention(Module):
    """MaxViT-style strided grid attention.

    Tokens at the same position modulo ``stride`` form one attention
    group: a sparse, dilated global pattern.  ``stride == 1`` degenerates
    to full attention; larger strides sample ever fewer pairs.
    """

    def __init__(self, dim: int, num_heads: int, stride: int,
                 rng: np.random.Generator | None = None):
        super().__init__()
        if stride < 1:
            raise ValueError("stride must be >= 1")
        self.stride = stride
        self.attn = MultiHeadSelfAttention(dim, num_heads, use_flash=False,
                                           rng=rng or np.random.default_rng(0))

    def forward(self, x: Tensor) -> Tensor:
        b, gh, gw, d = x.shape
        s = self.stride
        if gh % s or gw % s:
            raise ValueError(f"grid {(gh, gw)} not divisible by stride {s}")
        # (B, gh/s, s, gw/s, s, D) → groups indexed by (row%s, col%s)
        g = x.reshape(b, gh // s, s, gw // s, s, d)
        g = g.permute(0, 2, 4, 1, 3, 5)                    # (B, s, s, gh/s, gw/s, D)
        g = g.reshape(b * s * s, (gh // s) * (gw // s), d)
        g = self.attn(g)
        g = g.reshape(b, s, s, gh // s, gw // s, d)
        g = g.permute(0, 3, 1, 4, 2, 5)
        return g.reshape(b, gh, gw, d)


def sparse_attention_cost(gh: int, gw: int, kind: str, stride: int = 1) -> float:
    """Pairwise-interaction count of each pattern (full = (gh·gw)²).

    The quantitative form of Sec. II's complaint: axial is O(N^1.5)-ish
    and grid attention divides the quadratic term by s² — neither is
    linear in N, and both discard pairs to get there.
    """
    n = gh * gw
    if kind == "full":
        return float(n) ** 2
    if kind == "axial":
        return float(n) * (gh + gw)
    if kind == "grid":
        groups = stride * stride
        per_group = (n / groups) ** 2
        return groups * per_group
    raise ValueError(f"unknown kind {kind!r}")
