"""Canny edge detection, implemented from scratch.

The adaptive spatial compression module (Sec. III-A) estimates "feature
density" per quadrant via Canny edge detection; quadrants whose edge
density exceeds a threshold keep being subdivided.  The full classic
pipeline is implemented here on NumPy: Gaussian smoothing → Sobel
gradients → non-maximum suppression → double-threshold hysteresis.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

__all__ = ["gaussian_blur", "sobel_gradients", "canny_edges", "edge_density"]


def gaussian_blur(image: np.ndarray, sigma: float = 1.0) -> np.ndarray:
    """Gaussian smoothing with reflective borders."""
    return ndimage.gaussian_filter(np.asarray(image, dtype=np.float64), sigma, mode="reflect")


def sobel_gradients(image: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(magnitude, direction) of Sobel gradients; direction in radians."""
    img = np.asarray(image, dtype=np.float64)
    gx = ndimage.sobel(img, axis=1, mode="reflect")
    gy = ndimage.sobel(img, axis=0, mode="reflect")
    return np.hypot(gx, gy), np.arctan2(gy, gx)


def _non_maximum_suppression(magnitude: np.ndarray, direction: np.ndarray) -> np.ndarray:
    """Thin edges to one-pixel width along the gradient direction.

    Vectorised: the direction is quantized to 4 sectors (0°, 45°, 90°,
    135°) and each pixel is compared against its two neighbours along the
    quantized direction via array shifts.
    """
    h, w = magnitude.shape
    angle = np.rad2deg(direction) % 180.0
    sector = np.zeros((h, w), dtype=np.int8)
    sector[(angle >= 22.5) & (angle < 67.5)] = 1    # diagonal /
    sector[(angle >= 67.5) & (angle < 112.5)] = 2   # vertical gradient → horizontal edge
    sector[(angle >= 112.5) & (angle < 157.5)] = 3  # diagonal \

    padded = np.pad(magnitude, 1, mode="constant")

    def shifted(dy, dx):
        return padded[1 + dy : 1 + dy + h, 1 + dx : 1 + dx + w]

    neighbours = {
        0: (shifted(0, 1), shifted(0, -1)),
        1: (shifted(-1, 1), shifted(1, -1)),
        2: (shifted(1, 0), shifted(-1, 0)),
        3: (shifted(-1, -1), shifted(1, 1)),
    }
    keep = np.zeros((h, w), dtype=bool)
    for s, (n1, n2) in neighbours.items():
        sel = sector == s
        keep |= sel & (magnitude >= n1) & (magnitude >= n2)
    return np.where(keep, magnitude, 0.0)


def canny_edges(image: np.ndarray, sigma: float = 1.0,
                low_frac: float = 0.1, high_frac: float = 0.25) -> np.ndarray:
    """Boolean edge map via the full Canny pipeline.

    Thresholds are fractions of the post-NMS maximum magnitude, making the
    detector contrast-invariant — important because normalized climate
    fields vary widely in dynamic range.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ValueError("canny expects a 2-D field")
    if not 0 <= low_frac < high_frac <= 1:
        raise ValueError("need 0 <= low_frac < high_frac <= 1")
    blurred = gaussian_blur(image, sigma)
    magnitude, direction = sobel_gradients(blurred)
    thin = _non_maximum_suppression(magnitude, direction)
    peak = thin.max()
    if peak == 0:
        return np.zeros(image.shape, dtype=bool)
    strong = thin >= high_frac * peak
    weak = thin >= low_frac * peak
    # hysteresis: keep weak pixels connected to a strong pixel
    labels, n = ndimage.label(weak, structure=np.ones((3, 3)))
    if n == 0:
        return strong
    has_strong = ndimage.labeled_comprehension(
        strong, labels, np.arange(1, n + 1), np.any, bool, False
    )
    keep_label = np.zeros(n + 1, dtype=bool)
    keep_label[1:] = has_strong
    return keep_label[labels]


def edge_density(edges: np.ndarray) -> float:
    """Fraction of edge pixels — the quad-tree subdivision criterion."""
    edges = np.asarray(edges)
    if edges.size == 0:
        return 0.0
    return float(edges.mean())
