"""Bayesian training objective (Sec. III-A, "Bayesian Training Loss").

Training is posed as MAP estimation:

    argmin_x  || y - x ||_D^2  +  beta * sum_k sum_i sum_{j in C(i)} b_ij |x_ki - x_kj|

The first term is the forward data likelihood — a latitude-weighted MSE
(D = diag(cos φ) accounts for longitudinal spacing shrinking toward the
poles).  The second is a generalized Markov-Random-Field total-variation
prior over each pixel's 8-neighbourhood, with weights b_ij inversely
proportional to the Euclidean inter-pixel distance (1 for the 4 axial
neighbours, 1/√2 for diagonals).  TV promotes local smoothness while
preserving edges and discontinuities — the right prior for fields with
fronts and orographic boundaries.
"""

from __future__ import annotations

import numpy as np

from ..tensor import Tensor

__all__ = ["latitude_weighted_mse", "mrf_tv_prior", "BayesianDownscalingLoss",
           "LatitudeTileLoss"]

#: 8-neighbourhood offsets with inverse-distance weights b_ij
_NEIGHBOURS = (
    (0, 1, 1.0),
    (1, 0, 1.0),
    (1, 1, 1.0 / np.sqrt(2.0)),
    (1, -1, 1.0 / np.sqrt(2.0)),
)
# Only 4 of the 8 offsets are enumerated: each unordered pair {i, j}
# appears once (the other 4 are the reverses).


def latitude_weighted_mse(pred: Tensor, target: Tensor, lat_weights: np.ndarray) -> Tensor:
    """``mean(D * (y - x)^2)`` over (B, C, H, W) tensors.

    ``lat_weights`` is an (H, W) or (H, 1) array with mean 1 (see
    :func:`repro.data.latitude_weights`).
    """
    if pred.shape != target.shape:
        raise ValueError(f"shape mismatch {pred.shape} vs {target.shape}")
    w = np.asarray(lat_weights, dtype=np.float32)
    if w.ndim != 2 or w.shape[0] != pred.shape[-2]:
        raise ValueError(f"weights {w.shape} incompatible with field {pred.shape}")
    diff = pred - target
    return (diff * diff * Tensor(w)).mean()


def _charbonnier_abs(x: Tensor, eps: float) -> Tensor:
    """Smooth |x| ≈ sqrt(x² + ε²) − ε, differentiable at zero."""
    return ((x * x + eps * eps) ** 0.5) - eps


def mrf_tv_prior(pred: Tensor, eps: float = 1e-3) -> Tensor:
    """Mean 8-neighbourhood total variation of an (B, C, H, W) tensor.

    Uses a Charbonnier-smoothed absolute value so the gradient is defined
    everywhere; each neighbour pair is counted once with its
    inverse-distance weight.
    """
    if pred.ndim != 4:
        raise ValueError("expected (B, C, H, W)")
    _, _, h, w = pred.shape
    total: Tensor | None = None
    count = 0.0
    for dy, dx, weight in _NEIGHBOURS:
        if dy >= h or abs(dx) >= w:
            continue
        if dx >= 0:
            a = pred[:, :, dy:, dx:] if dy or dx else pred
            b = pred[:, :, : h - dy, : w - dx] if dy or dx else pred
        else:
            a = pred[:, :, dy:, : w + dx]
            b = pred[:, :, : h - dy, -dx:]
        term = _charbonnier_abs(a - b, eps).mean() * weight
        total = term if total is None else total + term
        count += weight
    if total is None:
        raise ValueError("field too small for any neighbour pair")
    return total * (1.0 / count)


class BayesianDownscalingLoss:
    """The full MAP objective: likelihood + beta * TV prior.

    Parameters
    ----------
    lat_weights:
        Latitude weighting matrix for the data term.
    tv_weight:
        Prior strength beta.  0 disables the prior (pure weighted MSE).
    """

    def __init__(self, lat_weights: np.ndarray, tv_weight: float = 0.05):
        if tv_weight < 0:
            raise ValueError("tv_weight must be non-negative")
        self.lat_weights = np.asarray(lat_weights, dtype=np.float32)
        self.tv_weight = float(tv_weight)

    def __call__(self, pred: Tensor, target: Tensor) -> Tensor:
        loss = latitude_weighted_mse(pred, target, self.lat_weights)
        if self.tv_weight > 0:
            loss = loss + mrf_tv_prior(pred) * self.tv_weight
        return loss

    def components(self, pred: Tensor, target: Tensor) -> dict[str, float]:
        """Diagnostic breakdown (data term, prior term) as floats."""
        data = float(latitude_weighted_mse(pred, target, self.lat_weights).data)
        prior = float(mrf_tv_prior(pred).data) if self.tv_weight > 0 else 0.0
        return {"data": data, "prior": prior, "total": data + self.tv_weight * prior}


class LatitudeTileLoss:
    """Latitude-weighted MSE that decomposes over equal-size tiles.

    The Bayesian data term weights rows by latitude over the *full* fine
    grid.  A tile sees only its own rows, so this loss slices the
    full-grid weight matrix to the tile's fine-pixel window — keeping the
    full-grid mean-1 normalization, **not** re-normalizing per tile.
    With equal-size tiles the average of the per-tile weighted means is
    then exactly the full-grid latitude-weighted MSE, so the distributed
    per-tile objective matches ``Trainer``'s global data term.

    The TV prior does *not* decompose over tiles (neighbour pairs cross
    tile boundaries), so this is the ``tv_weight=0`` objective; matching
    the full Bayesian loss with the prior enabled would need halo-aware
    prior terms and stays out of scope.

    The strategy layer detects the ``tile_aware`` attribute and passes
    each tile's :class:`~repro.core.tiles.TileSpec` so the right weight
    rows are selected; called without a spec (full-grid evaluation) it is
    plain :func:`latitude_weighted_mse`.
    """

    tile_aware = True

    def __init__(self, lat_weights: np.ndarray, factor: int = 1):
        self.lat_weights = np.asarray(lat_weights, dtype=np.float32)
        if self.lat_weights.ndim != 2:
            raise ValueError("lat_weights must be (H, W) over the fine grid")
        self.factor = int(factor)

    def __call__(self, pred: Tensor, target: Tensor, spec=None) -> Tensor:
        if spec is None:
            return latitude_weighted_mse(pred, target, self.lat_weights)
        f = self.factor
        w = self.lat_weights[spec.y0 * f: spec.y1 * f,
                             spec.x0 * f: spec.x1 * f]
        return latitude_weighted_mse(pred, target, w)
