"""ORBIT-2's primary contribution: Reslim, TILES, adaptive compression,
and the Bayesian downscaling objective."""

from .canny import canny_edges, edge_density, gaussian_blur, sobel_gradients
from .compression import QuadLeaf, QuadTreeCompressor, build_quadtree, uniform_token_count
from .config import PAPER_CONFIGS, ModelConfig, transformer_param_count
from .losses import (
    BayesianDownscalingLoss,
    LatitudeTileLoss,
    latitude_weighted_mse,
    mrf_tv_prior,
)
from .reslim import MAX_FACTOR_LOG2, Reslim, reslim_sequence_length
from .sparse_attention import AxialAttention, GridAttention, sparse_attention_cost
from .swin import (
    SWIN_PAPER_MAX_TOKENS,
    PatchMerging,
    SwinBlock,
    SwinDownscaler,
    WindowAttention,
    swin_param_growth,
    swin_stages_required,
)
from .tiles import (
    TiledDownscaler,
    TileSpec,
    extract_tile,
    make_tiles,
    stitch_tiles,
    tile_grid,
    tiled_attention_complexity,
)
from .vit import UpsampleViT, vit_sequence_length

__all__ = [
    "canny_edges",
    "edge_density",
    "gaussian_blur",
    "sobel_gradients",
    "QuadLeaf",
    "QuadTreeCompressor",
    "build_quadtree",
    "uniform_token_count",
    "ModelConfig",
    "PAPER_CONFIGS",
    "transformer_param_count",
    "BayesianDownscalingLoss",
    "LatitudeTileLoss",
    "latitude_weighted_mse",
    "mrf_tv_prior",
    "Reslim",
    "reslim_sequence_length",
    "MAX_FACTOR_LOG2",
    "UpsampleViT",
    "vit_sequence_length",
    "SwinDownscaler",
    "SwinBlock",
    "WindowAttention",
    "PatchMerging",
    "swin_stages_required",
    "swin_param_growth",
    "SWIN_PAPER_MAX_TOKENS",
    "AxialAttention",
    "GridAttention",
    "sparse_attention_cost",
    "TileSpec",
    "tile_grid",
    "make_tiles",
    "extract_tile",
    "stitch_tiles",
    "TiledDownscaler",
    "tiled_attention_complexity",
]
