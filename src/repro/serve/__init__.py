"""``repro.serve`` — the production downscaling service.

Turns the repo from a trainer into a system: a simulated-time request
queue with dynamic batch coalescing, an LRU tile cache keyed on
coarse-input content hashes, model replicas sharded across the virtual
cluster, and seeded traffic scenarios (steady / diurnal / burst).
Outputs are bit-identical to :func:`repro.train.predict_dataset` for
the same inputs — batching, caching, and placement are scheduling
decisions with zero numeric footprint (see ``service.py`` for the
determinism contract, and DESIGN.md §11 for the architecture).

Replica-count pricing against a latency SLO lives in
:func:`repro.distributed.perf_model.serve_report`, which drives this
package's scheduler in latency-only mode.
"""

from .cache import CacheStats, TileCache, content_key
from .service import (
    AutoscalePolicy,
    BatchPolicy,
    DownscalingService,
    Response,
    ServeResult,
)
from .tiling import TilePlan
from .traffic import ROLLING, SCENARIOS, Request, TrafficGenerator

__all__ = [
    "CacheStats",
    "TileCache",
    "content_key",
    "AutoscalePolicy",
    "BatchPolicy",
    "DownscalingService",
    "Response",
    "ServeResult",
    "TilePlan",
    "ROLLING",
    "SCENARIOS",
    "Request",
    "TrafficGenerator",
]
