"""LRU tile cache keyed on coarse-input content hashes.

Downscaling is a pure function of the coarse input, so two requests
carrying byte-identical coarse fields must produce byte-identical fine
fields — which makes the served output cacheable by *content*, not by
request identity.  :func:`content_key` hashes dtype + shape + raw bytes
(SHA-256), so equal-content arrays at different memory addresses, or
with different strides, collide onto the same key by construction.

The cache itself is a plain LRU over an :class:`~collections.OrderedDict`:
``get`` refreshes recency, ``put`` evicts the least-recently-used entry
once capacity is exceeded.  Stored arrays are defensively copied and
frozen (``writeable = False``) so a hit can never be corrupted by a
caller mutating its input or output in place — the determinism contract
of :mod:`repro.serve` depends on cached bytes staying exactly as
computed.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = ["CacheStats", "TileCache", "content_key"]


def content_key(array: np.ndarray) -> str:
    """SHA-256 content hash of an array: dtype, shape, and raw bytes.

    Strides and base offset do not participate — a transposed-then-copied
    view and a fresh array with the same values hash identically.
    """
    a = np.ascontiguousarray(array)
    h = hashlib.sha256()
    # length-prefixed header fields so ("f4", (12,)) never collides with
    # ("f", (412,)) through string concatenation
    for field in (a.dtype.str, repr(a.shape)):
        h.update(len(field).to_bytes(4, "little"))
        h.update(field.encode())
    # hash straight out of the array's buffer: ``a.data`` is a zero-copy
    # memoryview over the C-contiguous storage, so no tobytes()
    # materialization — tile-granular serving hashes every halo region
    # of every arrival, making this the hot path of admission
    h.update(a.data)
    return h.hexdigest()


@dataclass(frozen=True)
class CacheStats:
    """Snapshot of cache traffic since construction (or the last reset)."""

    capacity: int
    size: int
    hits: int = 0
    misses: int = 0
    evictions: int = 0
    insertions: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


_MISS = object()


class TileCache:
    """Bounded LRU mapping content keys to downscaled output tiles.

    Invariants (the property suite in ``tests/serve/test_cache.py``
    checks these against a reference model under random traffic):

    * ``len(cache) <= capacity`` always;
    * ``hits + misses == number of get() calls``;
    * ``insertions - evictions == len(cache)`` (re-putting a resident
      key updates in place — neither an insertion nor an eviction);
    * a ``get`` or re-``put`` makes its key the most recently used, so
      the evicted key is always the oldest-untouched one.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._entries: OrderedDict[str, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.insertions = 0

    # ------------------------------------------------------------------ #
    # core verbs
    # ------------------------------------------------------------------ #
    def get(self, key: str, default=None):
        """Look up ``key``, refreshing its recency; counts a hit or miss.

        Hits return the stored array directly, with no defensive copy:
        every resident array is frozen (``writeable = False``) by
        :meth:`put`, so a caller cannot corrupt the cached bytes through
        the returned reference.
        """
        value = self._entries.get(key, _MISS)
        if value is _MISS:
            self.misses += 1
            return default
        self.hits += 1
        self._entries.move_to_end(key)
        return value

    def put(self, key: str, value) -> str | None:
        """Insert or refresh ``key``; returns the evicted key, if any.

        Writable array values are stored as frozen copies so later
        in-place mutation of the caller's buffer cannot change what a
        future hit returns.  Arrays that arrive already frozen
        (``writeable`` flag off — e.g. tile cores cropped by
        :class:`~repro.serve.tiling.TilePlan`) are stored as-is: the
        caller has promised immutability, so the defensive copy would be
        pure overhead on the per-tile hot path.
        """
        if isinstance(value, np.ndarray) and value.flags.writeable:
            value = value.copy()
            value.flags.writeable = False
        if key in self._entries:
            self._entries[key] = value
            self._entries.move_to_end(key)
            return None
        self._entries[key] = value
        self.insertions += 1
        if len(self._entries) > self.capacity:
            evicted, _ = self._entries.popitem(last=False)
            self.evictions += 1
            return evicted
        return None

    # ------------------------------------------------------------------ #
    # inspection (none of these touch recency or traffic counters)
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: str) -> bool:
        return key in self._entries

    def keys(self) -> list[str]:
        """Resident keys, least- to most-recently used."""
        return list(self._entries)

    def clear(self) -> None:
        """Drop every entry; traffic counters keep accumulating."""
        self._entries.clear()

    @property
    def stats(self) -> CacheStats:
        return CacheStats(capacity=self.capacity, size=len(self._entries),
                          hits=self.hits, misses=self.misses,
                          evictions=self.evictions,
                          insertions=self.insertions)

    @property
    def hit_rate(self) -> float:
        return self.stats.hit_rate
