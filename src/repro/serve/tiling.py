"""Tile-granular serving geometry: per-tile keys, splitting, reassembly.

ORBIT-2's inference pipeline is tile-native — a global downscaling is a
sweep of overlapping halo tiles — and :class:`TilePlan` makes the tile
the unit of *serving* too.  It pins down, once per service, everything
the tile-granular scheduler needs:

* the halo-padded :class:`~repro.core.tiles.TileSpec` partition of the
  coarse grid (the same ``make_tiles`` geometry every inference path
  uses, so served tiles and :class:`~repro.core.tiles.TiledDownscaler`
  tiles are byte-for-byte the same slices);
* **per-tile cache keys**: a content hash over the tile's input region
  *including its halo* (a tile's output depends on every coarse pixel
  the model sees, so the halo must participate or two tiles with equal
  cores but different neighbourhoods would collide), joined with the
  crop geometry (edge tiles with clamped halos crop differently) and
  the service's plan epoch (so weight reshards invalidate every entry
  without touching the cache);
* the crop-and-stitch arithmetic of ``stitch_tiles``, transcribed so a
  request reassembled from cached tile cores is bitwise-identical to a
  whole-grid :func:`~repro.train.global_inference` pass.

Keys come in three flavours, strongest available wins: content hashes
when the request carries a real input array, ``tile_versions`` identity
when a latency-only traffic generator tracks which tiles changed (the
rolling-forecast scenario), and a per-sample fallback otherwise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.tiles import TileSpec, make_tiles
from .cache import content_key

__all__ = ["TilePlan"]


@dataclass(frozen=True)
class TilePlan:
    """The fixed tile geometry of one tile-granular service.

    ``specs`` are in row-major grid order — the same order
    ``make_tiles`` emits and ``stitch_tiles`` consumes, which is what
    lets :meth:`assemble` reproduce the stitched output bitwise.
    """

    coarse_shape: tuple[int, int]
    n_tiles: int
    halo: int
    factor: int
    specs: tuple[TileSpec, ...]

    @classmethod
    def build(cls, coarse_shape: tuple[int, int], n_tiles: int, halo: int,
              factor: int) -> "TilePlan":
        h, w = int(coarse_shape[0]), int(coarse_shape[1])
        if factor < 1:
            raise ValueError(f"factor must be >= 1, got {factor}")
        specs = tuple(make_tiles(h, w, n_tiles, halo))
        return cls(coarse_shape=(h, w), n_tiles=n_tiles, halo=halo,
                   factor=int(factor), specs=specs)

    # ------------------------------------------------------------------ #
    # geometry
    # ------------------------------------------------------------------ #
    def signature(self, i: int) -> tuple[int, int]:
        """Halo-extended input shape of tile ``i`` — the batching key.

        Interior tiles share one signature; edge and corner tiles carry
        clamped halos and therefore smaller ones.  Tiles in a coalesced
        batch must share a signature so one compiled forward program
        (one ``CompiledForward`` plan) serves the whole batch.
        """
        return self.specs[i].halo_shape

    def signatures(self) -> set[tuple[int, int]]:
        return {s.halo_shape for s in self.specs}

    def crop(self, i: int) -> tuple[int, int, int, int]:
        """(top, left, core_h, core_w) of tile ``i``'s core inside its
        halo-extended output, in *fine*-grid pixels."""
        s = self.specs[i]
        ch, cw = s.core_shape
        return ((s.y0 - s.hy0) * self.factor, (s.x0 - s.hx0) * self.factor,
                ch * self.factor, cw * self.factor)

    # ------------------------------------------------------------------ #
    # keys
    # ------------------------------------------------------------------ #
    def _geom(self, i: int) -> str:
        top, left, ch, cw = self.crop(i)
        return f"{top},{left},{ch},{cw}"

    def tile_key(self, i: int, *, input: np.ndarray | None = None,
                 versions: tuple[int, ...] | None = None,
                 sample: int | None = None, epoch: int = 0) -> str:
        """The cache key of tile ``i`` for one request.

        Content mode hashes the halo-extended input region — two
        requests whose grids differ only outside this region (plus its
        halo) produce the same key, which is the whole point: a
        rolling-forecast client pays only for the tiles whose content
        actually changed.  The crop geometry and plan epoch are folded
        in so clamped edge tiles never collide with interior ones and a
        reshard (epoch bump) invalidates everything at once.
        """
        geom = self._geom(i)
        if input is not None:
            region = self.slice_halo(input, i)
            return f"tile:{content_key(region)}/g:{geom}/e:{epoch}"
        if versions is not None:
            if len(versions) != self.n_tiles:
                raise ValueError(
                    f"tile_versions has {len(versions)} entries for "
                    f"{self.n_tiles} tiles")
            return f"tilev:{i}/v:{versions[i]}/g:{geom}/e:{epoch}"
        return f"tiles:{sample}/t:{i}/e:{epoch}"

    # ------------------------------------------------------------------ #
    # splitting and reassembly
    # ------------------------------------------------------------------ #
    def slice_halo(self, x: np.ndarray, i: int) -> np.ndarray:
        """Halo-extended input region of tile ``i`` from a (C, h, w) field."""
        s = self.specs[i]
        return x[:, s.hy0:s.hy1, s.hx0:s.hx1]

    def crop_core(self, out: np.ndarray, i: int) -> np.ndarray:
        """Crop tile ``i``'s core from its (1, C', H_h, W_h) fine output.

        Returns a frozen contiguous copy — exactly what the tile cache
        stores (frozen inputs skip the cache's defensive copy).
        """
        top, left, ch, cw = self.crop(i)
        expected_h = (self.specs[i].hy1 - self.specs[i].hy0) * self.factor
        expected_w = (self.specs[i].hx1 - self.specs[i].hx0) * self.factor
        if out.shape[-2] != expected_h or out.shape[-1] != expected_w:
            raise ValueError(
                f"tile output {out.shape[-2:]} != expected "
                f"{(expected_h, expected_w)}")
        core = out[:, :, top:top + ch, left:left + cw].copy()
        core.flags.writeable = False
        return core

    def assemble(self, cores: list[np.ndarray]) -> np.ndarray:
        """Stitch per-tile (1, C', ch·f, cw·f) cores into the (C', H, W)
        fine field — the same row-of-columns concatenation as
        ``stitch_tiles``, so the bytes match a whole-grid tiled forward.
        """
        if len(cores) != self.n_tiles:
            raise ValueError(f"{len(cores)} cores for {self.n_tiles} tiles")
        rows = max(s.row for s in self.specs) + 1
        cols = max(s.col for s in self.specs) + 1
        by_pos = {(s.row, s.col): cores[i] for i, s in enumerate(self.specs)}
        row_arrays = [
            np.concatenate([by_pos[(r, c)] for c in range(cols)], axis=3)
            for r in range(rows)
        ]
        return np.concatenate(row_arrays, axis=2)[0]
