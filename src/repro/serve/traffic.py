"""Synthetic request traffic: steady, diurnal, and burst scenarios.

"Millions of users" means the *queue*, not the model, is the system
under test — so the serving layer is exercised by a seeded arrival
process rather than a dataset loop.  Three canonical load shapes:

* ``steady``  — homogeneous Poisson arrivals at ``rate_rps``;
* ``diurnal`` — a day-curve: sinusoidal rate between
  ``rate·(1−a)`` and ``rate·(1+a)`` with mean ``rate`` (one full period
  over the scenario duration by default);
* ``burst``   — steady background plus a ``burst_factor``× spike over a
  fraction of the window (a viral region, an incoming cyclone).

Arrivals are drawn by Lewis–Shedler thinning of a homogeneous Poisson
process at the peak rate, from a seeded generator — the same
``(scenario, rate, duration, seed)`` always reproduces the same request
list, which is what lets the serving equivalence tests enumerate
scenario × replica × cache grids deterministically.

Each request references one of ``n_inputs`` distinct coarse fields with
Zipf-skewed popularity (exponent ``popularity``), so a content-keyed
cache sees realistic repeat traffic: a few hot regions requested over
and over, a long tail requested rarely.

A fourth, temporally-correlated scenario exercises tile-granular
serving:

* ``rolling`` — one global forecast state evolving in place: arrivals
  are steady Poisson, and between them a seeded tile-update process
  (rate ``tile_update_rate`` updates/s) rewrites the content of one
  coarse tile at a time.  Every request asks for the *current* state,
  so consecutive requests share most of their grid — a whole-request
  content cache misses on every update while a per-tile cache pays only
  for the tiles that actually changed.  Latency-only requests carry
  ``tile_versions`` (the per-tile version vector at arrival) so the
  scheduler can key tiles without materializing arrays; executed
  requests carry the evolved field itself, built by re-noising the
  updated tile's core region of the base input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["Request", "ROLLING", "SCENARIOS", "TrafficGenerator"]

SCENARIOS = ("steady", "diurnal", "burst")
ROLLING = "rolling"


@dataclass(frozen=True)
class Request:
    """One inference request: a coarse field wanted at fine resolution.

    ``sample`` identifies which of the generator's distinct inputs this
    request carries; ``input`` is the coarse array itself (normalized,
    ``(C, h, w)``) or ``None`` in latency-only simulations, where the
    scheduler runs but no model executes.
    """

    rid: int
    arrival_s: float
    sample: int
    input: np.ndarray | None = field(default=None, repr=False)
    #: rolling-forecast scenarios: the per-tile version vector at
    #: arrival time, the latency-only stand-in for content identity
    #: (tile i's key changes exactly when tile_versions[i] does)
    tile_versions: tuple[int, ...] | None = None


class TrafficGenerator:
    """Seeded arrival-process generator for the three load scenarios."""

    def __init__(self, scenario: str, rate_rps: float, duration_s: float,
                 *, seed: int = 0, n_inputs: int = 16,
                 popularity: float = 1.0, diurnal_amplitude: float = 0.8,
                 period_s: float | None = None, burst_factor: float = 6.0,
                 burst_start: float = 0.4, burst_width: float = 0.2,
                 n_tiles: int = 16, tile_update_rate: float = 4.0):
        if scenario not in SCENARIOS + (ROLLING,):
            raise ValueError(f"unknown scenario {scenario!r}; "
                             f"expected one of {SCENARIOS + (ROLLING,)}")
        if rate_rps <= 0 or duration_s <= 0:
            raise ValueError("rate_rps and duration_s must be positive")
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not (0.0 <= burst_start <= 1.0 and 0.0 < burst_width <= 1.0):
            raise ValueError("burst window fractions out of range")
        if n_inputs < 1:
            raise ValueError("need at least one distinct input")
        if scenario == ROLLING:
            if n_tiles < 1:
                raise ValueError("rolling scenario needs n_tiles >= 1")
            if tile_update_rate < 0.0:
                raise ValueError("tile_update_rate must be >= 0")
        self.n_tiles = n_tiles
        self.tile_update_rate = float(tile_update_rate)
        #: rolling only: the distinct evolved states generate() produced
        #: (index == Request.sample); arrays when inputs were given,
        #: else None placeholders.  The bitwise serving gates build
        #: their reference predictions from this list.
        self.states: list[np.ndarray | None] = []
        self.state_versions: list[tuple[int, ...]] = []
        self.scenario = scenario
        self.rate_rps = float(rate_rps)
        self.duration_s = float(duration_s)
        self.seed = seed
        self.n_inputs = n_inputs
        self.popularity = float(popularity)
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.period_s = float(period_s) if period_s else float(duration_s)
        self.burst_factor = float(burst_factor)
        self.burst_start_s = burst_start * self.duration_s
        self.burst_end_s = min(self.duration_s,
                               self.burst_start_s + burst_width * self.duration_s)

    # ------------------------------------------------------------------ #
    # the rate function lambda(t)
    # ------------------------------------------------------------------ #
    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (requests/s) at scenario time ``t``."""
        if self.scenario in ("steady", ROLLING):
            return self.rate_rps
        if self.scenario == "diurnal":
            # trough at t=0, peak mid-period; time-average is rate_rps
            phase = 2.0 * np.pi * t / self.period_s
            return self.rate_rps * (1.0 - self.diurnal_amplitude * np.cos(phase))
        if self.burst_start_s <= t < self.burst_end_s:
            return self.rate_rps * self.burst_factor
        return self.rate_rps

    @property
    def peak_rate_rps(self) -> float:
        if self.scenario in ("steady", ROLLING):
            return self.rate_rps
        if self.scenario == "diurnal":
            return self.rate_rps * (1.0 + self.diurnal_amplitude)
        return self.rate_rps * self.burst_factor

    @property
    def expected_requests(self) -> float:
        """Integral of the rate over the window (mean of the Poisson count)."""
        if self.scenario == "burst":
            burst_len = self.burst_end_s - self.burst_start_s
            return self.rate_rps * (self.duration_s
                                    + (self.burst_factor - 1.0) * burst_len)
        # steady and diurnal are mean-preserving by construction
        return self.rate_rps * self.duration_s

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    def _sample_weights(self) -> np.ndarray:
        ranks = np.arange(1, self.n_inputs + 1, dtype=np.float64)
        w = ranks ** -self.popularity
        return w / w.sum()

    def generate(self, inputs: Sequence[np.ndarray] | None = None) -> list[Request]:
        """The full request list for this scenario, sorted by arrival time.

        ``inputs`` (optional) is a sequence of distinct coarse fields; it
        must have ``n_inputs`` entries and is attached per-request so the
        service can execute for real.  Without it requests carry
        ``input=None`` (latency-only mode).

        The ``rolling`` scenario interprets ``inputs`` differently: a
        single base field ``[base]`` that the seeded tile-update process
        evolves in place — see :meth:`_generate_rolling`.
        """
        if self.scenario == ROLLING:
            return self._generate_rolling(inputs)
        if inputs is not None and len(inputs) != self.n_inputs:
            raise ValueError(f"{len(inputs)} inputs for n_inputs={self.n_inputs}")
        rng = np.random.default_rng(self.seed)
        peak = self.peak_rate_rps
        times: list[float] = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / peak)
            if t >= self.duration_s:
                break
            # Lewis-Shedler thinning: keep with probability lambda(t)/peak
            if rng.random() <= self.rate_at(t) / peak:
                times.append(t)
        samples = rng.choice(self.n_inputs, size=len(times),
                             p=self._sample_weights())
        return [
            Request(rid=i, arrival_s=float(ts), sample=int(s),
                    input=None if inputs is None else inputs[int(s)])
            for i, (ts, s) in enumerate(zip(times, samples))
        ]

    def _generate_rolling(self, inputs: Sequence[np.ndarray] | None) -> list[Request]:
        """The rolling-forecast request list (temporally correlated).

        One global state evolves over the window: a homogeneous Poisson
        update process at ``tile_update_rate`` bumps one uniformly-drawn
        tile's version per event (and, in executed mode, re-noises that
        tile's core region of the base field).  Each steady-Poisson
        arrival requests the state current at its arrival time.
        Distinct states are deduplicated: ``Request.sample`` indexes
        ``self.states`` / ``self.state_versions``, so equal states share
        one array and the bitwise gates need only one reference
        prediction per state.
        """
        if inputs is not None and len(inputs) != 1:
            raise ValueError(
                f"rolling takes a single base field, got {len(inputs)} inputs")
        base = None if inputs is None else np.asarray(inputs[0])
        rng = np.random.default_rng(self.seed)
        # draw order is fixed (arrivals, update times, update tiles) so
        # the same seed reproduces the same timeline exactly
        times: list[float] = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / self.rate_rps)
            if t >= self.duration_s:
                break
            times.append(t)
        update_times: list[float] = []
        if self.tile_update_rate > 0.0:
            t = 0.0
            while True:
                t += rng.exponential(1.0 / self.tile_update_rate)
                if t >= self.duration_s:
                    break
                update_times.append(t)
        update_tiles = rng.integers(0, self.n_tiles, size=len(update_times))

        core_regions = None
        if base is not None:
            from ..core.tiles import make_tiles
            h, w = base.shape[-2:]
            core_regions = [(s.y0, s.y1, s.x0, s.x1)
                            for s in make_tiles(h, w, self.n_tiles, 0)]

        versions = [0] * self.n_tiles
        current = base
        self.states = []
        self.state_versions = []
        state_index: dict[tuple[int, ...], int] = {}
        requests: list[Request] = []
        next_update = 0
        for rid, ts in enumerate(times):
            while next_update < len(update_times) and update_times[next_update] <= ts:
                tile = int(update_tiles[next_update])
                versions[tile] += 1
                if current is not None:
                    y0, y1, x0, x1 = core_regions[tile]
                    current = current.copy()
                    current[..., y0:y1, x0:x1] = rng.standard_normal(
                        current[..., y0:y1, x0:x1].shape).astype(current.dtype)
                next_update += 1
            vt = tuple(versions)
            sample = state_index.get(vt)
            if sample is None:
                sample = len(self.states)
                state_index[vt] = sample
                self.states.append(current)
                self.state_versions.append(vt)
            requests.append(Request(
                rid=rid, arrival_s=float(ts), sample=sample,
                input=self.states[sample], tile_versions=vt))
        return requests
