"""Synthetic request traffic: steady, diurnal, and burst scenarios.

"Millions of users" means the *queue*, not the model, is the system
under test — so the serving layer is exercised by a seeded arrival
process rather than a dataset loop.  Three canonical load shapes:

* ``steady``  — homogeneous Poisson arrivals at ``rate_rps``;
* ``diurnal`` — a day-curve: sinusoidal rate between
  ``rate·(1−a)`` and ``rate·(1+a)`` with mean ``rate`` (one full period
  over the scenario duration by default);
* ``burst``   — steady background plus a ``burst_factor``× spike over a
  fraction of the window (a viral region, an incoming cyclone).

Arrivals are drawn by Lewis–Shedler thinning of a homogeneous Poisson
process at the peak rate, from a seeded generator — the same
``(scenario, rate, duration, seed)`` always reproduces the same request
list, which is what lets the serving equivalence tests enumerate
scenario × replica × cache grids deterministically.

Each request references one of ``n_inputs`` distinct coarse fields with
Zipf-skewed popularity (exponent ``popularity``), so a content-keyed
cache sees realistic repeat traffic: a few hot regions requested over
and over, a long tail requested rarely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

__all__ = ["Request", "SCENARIOS", "TrafficGenerator"]

SCENARIOS = ("steady", "diurnal", "burst")


@dataclass(frozen=True)
class Request:
    """One inference request: a coarse field wanted at fine resolution.

    ``sample`` identifies which of the generator's distinct inputs this
    request carries; ``input`` is the coarse array itself (normalized,
    ``(C, h, w)``) or ``None`` in latency-only simulations, where the
    scheduler runs but no model executes.
    """

    rid: int
    arrival_s: float
    sample: int
    input: np.ndarray | None = field(default=None, repr=False)


class TrafficGenerator:
    """Seeded arrival-process generator for the three load scenarios."""

    def __init__(self, scenario: str, rate_rps: float, duration_s: float,
                 *, seed: int = 0, n_inputs: int = 16,
                 popularity: float = 1.0, diurnal_amplitude: float = 0.8,
                 period_s: float | None = None, burst_factor: float = 6.0,
                 burst_start: float = 0.4, burst_width: float = 0.2):
        if scenario not in SCENARIOS:
            raise ValueError(f"unknown scenario {scenario!r}; "
                             f"expected one of {SCENARIOS}")
        if rate_rps <= 0 or duration_s <= 0:
            raise ValueError("rate_rps and duration_s must be positive")
        if not 0.0 <= diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if not (0.0 <= burst_start <= 1.0 and 0.0 < burst_width <= 1.0):
            raise ValueError("burst window fractions out of range")
        if n_inputs < 1:
            raise ValueError("need at least one distinct input")
        self.scenario = scenario
        self.rate_rps = float(rate_rps)
        self.duration_s = float(duration_s)
        self.seed = seed
        self.n_inputs = n_inputs
        self.popularity = float(popularity)
        self.diurnal_amplitude = float(diurnal_amplitude)
        self.period_s = float(period_s) if period_s else float(duration_s)
        self.burst_factor = float(burst_factor)
        self.burst_start_s = burst_start * self.duration_s
        self.burst_end_s = min(self.duration_s,
                               self.burst_start_s + burst_width * self.duration_s)

    # ------------------------------------------------------------------ #
    # the rate function lambda(t)
    # ------------------------------------------------------------------ #
    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (requests/s) at scenario time ``t``."""
        if self.scenario == "steady":
            return self.rate_rps
        if self.scenario == "diurnal":
            # trough at t=0, peak mid-period; time-average is rate_rps
            phase = 2.0 * np.pi * t / self.period_s
            return self.rate_rps * (1.0 - self.diurnal_amplitude * np.cos(phase))
        if self.burst_start_s <= t < self.burst_end_s:
            return self.rate_rps * self.burst_factor
        return self.rate_rps

    @property
    def peak_rate_rps(self) -> float:
        if self.scenario == "steady":
            return self.rate_rps
        if self.scenario == "diurnal":
            return self.rate_rps * (1.0 + self.diurnal_amplitude)
        return self.rate_rps * self.burst_factor

    @property
    def expected_requests(self) -> float:
        """Integral of the rate over the window (mean of the Poisson count)."""
        if self.scenario == "burst":
            burst_len = self.burst_end_s - self.burst_start_s
            return self.rate_rps * (self.duration_s
                                    + (self.burst_factor - 1.0) * burst_len)
        # steady and diurnal are mean-preserving by construction
        return self.rate_rps * self.duration_s

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    def _sample_weights(self) -> np.ndarray:
        ranks = np.arange(1, self.n_inputs + 1, dtype=np.float64)
        w = ranks ** -self.popularity
        return w / w.sum()

    def generate(self, inputs: Sequence[np.ndarray] | None = None) -> list[Request]:
        """The full request list for this scenario, sorted by arrival time.

        ``inputs`` (optional) is a sequence of distinct coarse fields; it
        must have ``n_inputs`` entries and is attached per-request so the
        service can execute for real.  Without it requests carry
        ``input=None`` (latency-only mode).
        """
        if inputs is not None and len(inputs) != self.n_inputs:
            raise ValueError(f"{len(inputs)} inputs for n_inputs={self.n_inputs}")
        rng = np.random.default_rng(self.seed)
        peak = self.peak_rate_rps
        times: list[float] = []
        t = 0.0
        while True:
            t += rng.exponential(1.0 / peak)
            if t >= self.duration_s:
                break
            # Lewis-Shedler thinning: keep with probability lambda(t)/peak
            if rng.random() <= self.rate_at(t) / peak:
                times.append(t)
        samples = rng.choice(self.n_inputs, size=len(times),
                             p=self._sample_weights())
        return [
            Request(rid=i, arrival_s=float(ts), sample=int(s),
                    input=None if inputs is None else inputs[int(s)])
            for i, (ts, s) in enumerate(zip(times, samples))
        ]
