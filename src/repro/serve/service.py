"""The production downscaling service: queue, batcher, cache, replicas.

:class:`DownscalingService` turns the bare ``predict_dataset`` loop into
a *system*: requests arrive on a simulated clock, a dynamic batcher
coalesces them under a max-batch/max-wait policy, an LRU tile cache
short-circuits repeat coarse inputs by content hash, and N model
replicas — each owning a contiguous slice of the virtual cluster —
serve batches in parallel.  Everything runs as a deterministic
discrete-event simulation: *time* is modeled (dispatch overhead +
per-sample roofline inference time, the same pricing family as
``repro.distributed.perf_model``), while *outputs* are real — each
request's coarse field goes through the actual model.

**Determinism contract.**  Served outputs are bit-identical to a direct
:func:`repro.train.predict_dataset` pass over the same inputs,
regardless of how requests were batched, cached, or placed on replicas:

* a coalesced batch executes its members through the same per-sample
  kernel path as ``predict_dataset`` (the engine is batch-invariant;
  ``tests/serve`` pins this), so coalescing is a *scheduling* decision
  with zero numeric footprint — its payoff, amortized dispatch
  overhead, lives entirely in the modeled timeline;
* the cache stores frozen copies keyed by content hash, so a hit
  returns exactly the bytes a miss would have computed;
* replicas share one set of weights, so placement cannot matter.

That contract is what makes the layer testable: the equivalence suite
asserts bitwise equality over the full scenario × replica × cache grid.

Instrumentation is first-class ``repro.obs``: per-request latency and
queue-wait histograms (p50/p99 in the metrics dump), queue depth
sampled at every arrival, cache hit-rate, and per-replica utilization —
plus trace spans (one ``serve/replica`` root per replica covering the
run, one ``serve/batch`` child per dispatch) that export to the same
Perfetto-loadable Chrome format as training traces, and whose coverage
reproduces the utilization gauges exactly (the metrics-contract tests
gate this).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from ..core.tiles import extract_tile
from ..distributed.comm import VirtualCluster
from ..distributed.perf_model import (DEFAULT_SERVICE_TIME, SERVE_DISPATCH_S,
                                      service_time_model,
                                      tile_service_time_model)
from ..obs.clock import SimClock
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Span
from ..tensor import Tensor, no_grad
from ..train.inference import build_inference_runner
from .cache import TileCache, content_key
from .tiling import TilePlan
from .traffic import Request

__all__ = ["AutoscalePolicy", "BatchPolicy", "Response", "ServeResult",
           "DownscalingService"]


@dataclass(frozen=True)
class BatchPolicy:
    """Dynamic-batching policy: dispatch at ``max_batch`` requests or
    once the oldest queued request has waited ``max_wait_s``, whichever
    comes first (and an idle replica exists)."""

    max_batch: int = 8
    max_wait_s: float = 0.05

    def __post_init__(self):
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.max_wait_s < 0.0:
            raise ValueError("max_wait_s must be >= 0")


@dataclass(frozen=True)
class AutoscalePolicy:
    """Queue-depth replica autoscaling over a fixed maximum fleet.

    The service starts with ``min_replicas`` active.  When an arrival
    leaves more than ``scale_up_depth`` pending requests *per active
    replica*, one standby replica is activated — it becomes usable
    ``spinup_s`` later, the modeled downtime of remapping the shared
    weights onto the new replica's ranks (the same canonical-state move
    a training reshard performs).  Once the queue drains, idle surplus
    replicas are deactivated down to ``min_replicas``.  ``cooldown_s``
    rate-limits consecutive scaling actions so a single burst edge
    cannot thrash the fleet.
    """

    min_replicas: int = 1
    scale_up_depth: int = 8
    cooldown_s: float = 0.25
    spinup_s: float = 5.0e-3

    def __post_init__(self):
        if self.min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        if self.scale_up_depth < 1:
            raise ValueError("scale_up_depth must be >= 1")
        if self.cooldown_s < 0.0 or self.spinup_s < 0.0:
            raise ValueError("cooldown_s and spinup_s must be >= 0")


@dataclass
class Response:
    """One served request with its full timing record."""

    request: Request
    dispatch_s: float
    complete_s: float
    replica: int | None      # None for cache hits (never reached a replica)
    batch_size: int          # coalesced batch size (1 for cache hits)
    cache_hit: bool
    output: np.ndarray | None
    status: str = "ok"       # "ok" | "shed" (rejected by admission control)
    # tile-granular serving only (0 on the whole-request path):
    tiles: int = 0           # tiles the request was split into
    tiles_hit: int = 0       # tiles answered from the tile cache at arrival
    tiles_computed: int = 0  # tiles resolved by a batch completion

    @property
    def arrival_s(self) -> float:
        return self.request.arrival_s

    @property
    def latency_s(self) -> float:
        return self.complete_s - self.request.arrival_s

    @property
    def queue_wait_s(self) -> float:
        return self.dispatch_s - self.request.arrival_s


@dataclass
class ServeResult:
    """Everything one service run produced: responses, spans, metrics."""

    responses: list[Response]
    spans: list[Span]
    metrics: MetricsRegistry
    duration_s: float
    n_replicas: int
    gpus_per_replica: int
    utilization: dict[int, float] = field(default_factory=dict)

    def summary(self) -> dict:
        """JSON-ready headline numbers (the ``BENCH_serve`` schema)."""
        m = self.metrics
        lat = m.histograms.get("serve/latency_s")
        wait = m.histograms.get("serve/queue_wait_s")
        depth = m.histograms.get("serve/queue_depth")
        bsize = m.histograms.get("serve/batch_size")
        n = len(self.responses)
        out = {
            "requests": n,
            "duration_s": self.duration_s,
            "throughput_rps": n / self.duration_s if self.duration_s else 0.0,
            "latency_p50_s": lat.percentile(50) if lat else 0.0,
            "latency_p99_s": lat.percentile(99) if lat else 0.0,
            "latency_mean_s": lat.mean if lat else 0.0,
            "latency_max_s": lat.max if lat and lat.count else 0.0,
            "queue_wait_p99_s": wait.percentile(99) if wait else 0.0,
            "queue_depth_max": depth.max if depth and depth.count else 0.0,
            "queue_depth_p99": depth.percentile(99) if depth else 0.0,
            "batches": m.counters.get("serve/batches", 0.0),
            "batch_size_mean": bsize.mean if bsize else 0.0,
            "cache_hits": m.counters.get("serve/cache/hits", 0.0),
            "cache_misses": m.counters.get("serve/cache/misses", 0.0),
            "cache_evictions": m.counters.get("serve/cache/evictions", 0.0),
            "cache_hit_rate": m.gauges.get("serve/cache/hit_rate", 0.0),
            "n_replicas": self.n_replicas,
            "gpus_per_replica": self.gpus_per_replica,
            "utilization_mean": (sum(self.utilization.values())
                                 / len(self.utilization)
                                 if self.utilization else 0.0),
            "utilization": {str(r): u for r, u in self.utilization.items()},
            "shed": m.counters.get("serve/shed", 0.0),
            "scale_ups": m.counters.get("serve/scale_up", 0.0),
            "scale_downs": m.counters.get("serve/scale_down", 0.0),
            "replica_seconds": m.gauges.get(
                "serve/replica_seconds",
                self.n_replicas * self.duration_s),
        }
        tile_lookups = (m.counters.get("serve/tile/hits", 0.0)
                        + m.counters.get("serve/tile/misses", 0.0))
        if tile_lookups:
            occ = m.histograms.get("serve/tile/batch_occupancy")
            out.update({
                "tile_hits": m.counters.get("serve/tile/hits", 0.0),
                "tile_misses": m.counters.get("serve/tile/misses", 0.0),
                "tile_coalesced": m.counters.get("serve/tile/coalesced", 0.0),
                "tile_hit_rate": m.gauges.get("serve/tile/hit_rate", 0.0),
                "tile_batch_occupancy_mean": occ.mean if occ else 0.0,
            })
        return out

    def export_chrome(self, path) -> None:
        from ..obs.export import write_chrome_trace
        write_chrome_trace(path, self.spans)


# event ordering at equal timestamps: completions populate the cache
# before same-instant arrivals probe it, and both precede deadline checks
_COMPLETE, _ARRIVAL, _DEADLINE = 0, 1, 2

_MISS_SENTINEL = object()


class DownscalingService:
    """Queue + batcher + cache + replicas over a virtual cluster.

    Parameters
    ----------
    model:
        The downscaler to execute (any ``(1, C, h, w) -> (1, C', H, W)``
        module).  ``None`` runs the scheduler latency-only — same queue
        dynamics, no outputs — which is how
        :func:`repro.distributed.perf_model.serve_report` prices replica
        counts without paying for compute.
    n_replicas:
        Model replicas; the cluster's ranks are split into contiguous
        equal slices, one per replica (replica sharding).
    policy:
        Dynamic-batching policy (:class:`BatchPolicy`).
    cache:
        A :class:`TileCache`, or ``None`` to disable caching.
    cluster:
        The :class:`VirtualCluster` to shard replicas across; defaults
        to ``n_replicas * gpus_per_replica`` ranks.
    target_normalizer:
        Maps model outputs back to physical units, exactly as
        ``predict_dataset`` does (pass the dataset's).
    n_tiles / halo / factor / coarse_shape:
        Tiled-inference configuration, validated up front through
        :func:`repro.train.build_inference_runner`.
    tile_serving:
        Make the *tile* the unit of serving: requests are split into
        halo tiles at admission, the cache is keyed per tile (content
        hash over the halo-extended region + crop geometry + plan
        epoch), and only missed tiles are recomputed — coalesced
        across requests into shared per-signature batches.  Requires
        ``n_tiles >= 2`` and ``coarse_shape``.  Outputs stay bitwise
        identical to the whole-request path (the reassembly transcribes
        ``stitch_tiles`` exactly).
    plan_epoch:
        Starting epoch folded into every tile key;
        :meth:`bump_plan_epoch` (call it after a reshard / weight swap)
        invalidates all resident tile entries without touching the
        cache.
    service_time:
        ``batch_size -> seconds`` pricing of one dispatched batch;
        defaults to :func:`repro.distributed.perf_model.service_time_model`
        for ``config`` (or a generic constant model when no config is
        given).
    hit_latency_s:
        Modeled latency of answering from the cache.
    max_queue_depth:
        Admission control: cache misses arriving while this many
        requests are already pending are *shed* — answered immediately
        with ``status="shed"`` and no output, counted on ``serve/shed``
        — so the queue (and tail latency) stays bounded under overload.
        ``None`` (default) admits everything.
    autoscale:
        An :class:`AutoscalePolicy` enabling queue-depth replica
        autoscaling; ``n_replicas`` is then the *maximum* fleet and the
        run starts with ``autoscale.min_replicas`` active.
    """

    def __init__(self, model=None, *, n_replicas: int = 1,
                 gpus_per_replica: int = 1,
                 policy: BatchPolicy | None = None,
                 cache: TileCache | None = None,
                 cluster: VirtualCluster | None = None,
                 target_normalizer=None, n_tiles: int = 1, halo: int = 0,
                 factor: int | None = None,
                 coarse_shape: tuple[int, int] | None = None,
                 tile_serving: bool = False, plan_epoch: int = 0,
                 service_time=None, config=None,
                 tokens_per_sample: int = 4096,
                 hit_latency_s: float = 1.0e-4,
                 compile: bool = False,
                 max_queue_depth: int | None = None,
                 autoscale: AutoscalePolicy | None = None):
        if n_replicas < 1:
            raise ValueError("n_replicas must be >= 1")
        if hit_latency_s < 0.0:
            raise ValueError("hit_latency_s must be >= 0")
        if max_queue_depth is not None and max_queue_depth < 1:
            raise ValueError("max_queue_depth must be >= 1 (or None)")
        if autoscale is not None and autoscale.min_replicas > n_replicas:
            raise ValueError(
                f"autoscale min_replicas {autoscale.min_replicas} > fleet "
                f"of {n_replicas}")
        self.max_queue_depth = max_queue_depth
        self.autoscale = autoscale
        self.policy = policy or BatchPolicy()
        self.cache = cache
        self.cluster = cluster or VirtualCluster(n_replicas * gpus_per_replica)
        if self.cluster.world_size % n_replicas:
            raise ValueError(
                f"world {self.cluster.world_size} not divisible into "
                f"{n_replicas} replicas")
        self.n_replicas = n_replicas
        self.gpus_per_replica = self.cluster.world_size // n_replicas
        self.hit_latency_s = hit_latency_s
        self.model = model
        self._runner = None
        if model is not None:
            model.eval()
            self._runner = build_inference_runner(
                model, n_tiles=n_tiles, halo=halo, factor=factor,
                coarse_shape=coarse_shape, compile=compile)
        self._target_normalizer = target_normalizer
        if service_time is not None:
            self.service_time = service_time
        elif config is not None:
            self.service_time = service_time_model(
                config, tokens_per_sample=tokens_per_sample,
                gpus_per_replica=self.gpus_per_replica,
                topology=self.cluster.topology)
        else:
            self.service_time = DEFAULT_SERVICE_TIME
        self.plan_epoch = int(plan_epoch)
        self.tile_plan: TilePlan | None = None
        self.tile_service_time = None
        if tile_serving:
            if n_tiles < 2:
                raise ValueError("tile_serving needs n_tiles >= 2")
            if coarse_shape is None:
                raise ValueError("tile_serving needs coarse_shape=(h, w)")
            plan_factor = factor
            if plan_factor is None:
                # latency-only runs have no model; the factor only scales
                # the crop geometry inside keys, so any constant works
                plan_factor = getattr(model, "factor", None) or 1
            self.tile_plan = TilePlan.build(coarse_shape, n_tiles, halo,
                                            int(plan_factor))
            if hasattr(service_time, "tile_time"):
                self.tile_service_time = service_time
            elif config is not None:
                self.tile_service_time = tile_service_time_model(
                    config, coarse_shape=self.tile_plan.coarse_shape,
                    n_tiles=n_tiles, halo=halo,
                    tokens_per_sample=tokens_per_sample,
                    gpus_per_replica=self.gpus_per_replica,
                    topology=self.cluster.topology)
            else:
                # derive per-tile pricing from whatever request-level
                # model was supplied (or the generic default)
                base = service_time if service_time is not None \
                    else DEFAULT_SERVICE_TIME
                self.tile_service_time = tile_service_time_model(
                    None, coarse_shape=self.tile_plan.coarse_shape,
                    n_tiles=n_tiles, halo=halo,
                    per_sample_s=getattr(base, "per_sample_s",
                                         DEFAULT_SERVICE_TIME.per_sample_s),
                    dispatch_s=getattr(base, "dispatch_s",
                                       SERVE_DISPATCH_S))

    # ------------------------------------------------------------------ #
    # replica layout
    # ------------------------------------------------------------------ #
    def replica_ranks(self, replica: int) -> list[int]:
        g = self.gpus_per_replica
        return list(range(replica * g, (replica + 1) * g))

    def home_rank(self, replica: int) -> int:
        return replica * self.gpus_per_replica

    # ------------------------------------------------------------------ #
    # execution (real outputs; the per-sample predict_dataset pipeline)
    # ------------------------------------------------------------------ #
    def _execute(self, x: np.ndarray) -> np.ndarray:
        with no_grad():
            pred = self._runner(Tensor(x[None])).data
        if self._target_normalizer is not None:
            pred = np.stack([self._target_normalizer.denormalize(p)
                             for p in pred])
        return pred[0]

    @staticmethod
    def _key(req: Request) -> str:
        if req.input is not None:
            return content_key(req.input)
        return f"sample:{req.sample}"

    # ------------------------------------------------------------------ #
    # tile-granular serving helpers
    # ------------------------------------------------------------------ #
    def bump_plan_epoch(self) -> int:
        """Invalidate every tile key — call after a reshard/weight swap.

        The epoch participates in every key :class:`TilePlan` derives,
        so bumping it orphans all resident entries (they age out of the
        LRU) without clearing the cache or blocking traffic.
        """
        self.plan_epoch += 1
        return self.plan_epoch

    def _execute_tile(self, x: np.ndarray, i: int) -> np.ndarray:
        """One tile forward, exactly as :class:`TiledDownscaler` runs it:
        slice the halo-extended region, run the *inner* model (the
        compiled per-tile program when ``compile=True``), crop the core.
        Returns the frozen normalized core the cache stores."""
        spec = self.tile_plan.specs[i]
        with no_grad():
            out = self._runner.model(extract_tile(Tensor(x[None]), spec)).data
        return self.tile_plan.crop_core(out, i)

    def _assemble(self, cores: list[np.ndarray]) -> np.ndarray:
        """Reassemble cached/computed cores into the served output.

        Mirrors :meth:`_execute` operation for operation — concatenate
        normalized cores (the same ``stitch_tiles`` arithmetic), then
        denormalize the assembled field — so the bytes match a
        whole-request forward regardless of which tiles were hits.
        """
        pred = self.tile_plan.assemble(cores)
        if self._target_normalizer is not None:
            pred = self._target_normalizer.denormalize(pred)
        return pred

    # ------------------------------------------------------------------ #
    # the discrete-event loop
    # ------------------------------------------------------------------ #
    def run(self, requests: list[Request], monitor=None) -> ServeResult:
        """Serve every request; returns responses + spans + metrics.

        Deterministic: the same request list on the same service
        configuration produces the identical result, event for event.

        ``monitor`` (a :class:`repro.obs.monitor.Monitor`) receives the
        health stream on the simulated clock: per-request latency
        (``serve/latency_s``), queue depth and a shed indicator at every
        arrival, and ``scale_up``/``scale_down`` events annotating the
        autoscaler's decisions — so SLO-burn/queue/shed rules evaluate
        at deterministic timestamps and replay bitwise.
        """
        if self.tile_plan is not None:
            return self._run_tiled(requests, monitor)
        clock = SimClock.frozen()
        metrics = MetricsRegistry()
        spans: list[Span] = []
        responses: dict[int, Response] = {}
        pending: list[Request] = []          # FIFO queue of cache misses
        busy_s = [0.0] * self.n_replicas
        # authoritative replica frontiers: plain floats so the idle check
        # compares bit-exactly against completion-event timestamps (the
        # SimClock mirrors them for the per-rank trace timelines)
        free = [0.0] * self.n_replicas
        batches = 0
        # autoscaling state: which replicas are active, when each active
        # window opened (for replica-seconds accounting), last scale time
        start_active = (self.autoscale.min_replicas
                        if self.autoscale is not None else self.n_replicas)
        active = [r < start_active for r in range(self.n_replicas)]
        window_open: dict[int, float] = {r: 0.0 for r in range(start_active)}
        replica_seconds = [0.0] * self.n_replicas
        last_scale = float("-inf")

        heap: list[tuple[float, int, int, object]] = []
        seq = 0

        def push(t: float, kind: int, payload) -> None:
            nonlocal seq
            heapq.heappush(heap, (t, kind, seq, payload))
            seq += 1

        for req in sorted(requests, key=lambda r: (r.arrival_s, r.rid)):
            if req.rid in responses:
                raise ValueError(f"duplicate request id {req.rid}")
            responses[req.rid] = None  # reserve; filled on completion
            push(req.arrival_s, _ARRIVAL, req)

        def free_at(replica: int) -> float:
            return free[replica]

        def maybe_scale_up(now: float) -> None:
            au = self.autoscale
            if au is None:
                return
            nonlocal last_scale
            n_act = sum(active)
            if (n_act < self.n_replicas
                    and len(pending) >= au.scale_up_depth * n_act
                    and now - last_scale >= au.cooldown_s):
                r = active.index(False)
                active[r] = True
                # the new replica is usable after the modeled downtime of
                # remapping the shared weights onto its ranks
                free[r] = max(free[r], now + au.spinup_s)
                window_open[r] = now
                last_scale = now
                metrics.inc("serve/scale_up")
                if monitor is not None:
                    monitor.event("scale_up", t=now, replica=r,
                                  queue_depth=len(pending),
                                  active=sum(active))
                spans.append(Span(
                    name="serve/scale_up", cat="serve",
                    rank=self.home_rank(r), start_s=now, dur_s=au.spinup_s,
                    depth=1, args={"replica": r, "queue_depth": len(pending),
                                   "modeled": True}))
                push(now + au.spinup_s, _DEADLINE, None)

        def maybe_scale_down(now: float) -> None:
            au = self.autoscale
            if au is None or pending:
                return
            nonlocal last_scale
            if sum(active) <= au.min_replicas or now - last_scale < au.cooldown_s:
                return
            for r in reversed(range(self.n_replicas)):
                if active[r] and free_at(r) <= now:
                    active[r] = False
                    replica_seconds[r] += now - window_open.pop(r)
                    last_scale = now
                    metrics.inc("serve/scale_down")
                    if monitor is not None:
                        monitor.event("scale_down", t=now, replica=r,
                                      active=sum(active))
                    break

        def try_dispatch(now: float) -> None:
            nonlocal batches
            while pending:
                idle = [r for r in range(self.n_replicas)
                        if active[r] and free_at(r) <= now]
                if not idle:
                    return
                full = len(pending) >= self.policy.max_batch
                # the deadline event was scheduled at exactly
                # arrival + max_wait_s, so this comparison is exact
                due = pending[0].arrival_s + self.policy.max_wait_s <= now
                if not (full or due):
                    return
                batch = pending[: self.policy.max_batch]
                del pending[: len(batch)]
                replica = idle[0]
                dur = float(self.service_time(len(batch)))
                if dur < 0.0:
                    raise ValueError("service_time returned a negative duration")
                end = now + dur
                free[replica] = end
                for rank in self.replica_ranks(replica):
                    clock.advance(rank, max(0.0, end - clock.now(rank)))
                busy_s[replica] += dur
                batches += 1
                metrics.inc("serve/batches")
                metrics.inc(f"serve/replica/{replica}/batches")
                metrics.observe("serve/batch_size", len(batch))
                spans.append(Span(
                    name="serve/batch", cat="serve",
                    rank=self.home_rank(replica), start_s=now, dur_s=dur,
                    depth=1,
                    args={"replica": replica, "batch_size": len(batch),
                          "rids": [r.rid for r in batch], "modeled": True}))
                outputs = None
                if self._runner is not None:
                    outputs = [self._execute(r.input) for r in batch]
                push(end, _COMPLETE, (replica, batch, now, outputs))

        def respond(req: Request, dispatch_s: float, complete_s: float,
                    replica: int | None, batch_size: int, cache_hit: bool,
                    output) -> None:
            responses[req.rid] = Response(
                request=req, dispatch_s=dispatch_s, complete_s=complete_s,
                replica=replica, batch_size=batch_size, cache_hit=cache_hit,
                output=output)
            metrics.inc("serve/requests")
            metrics.observe("serve/latency_s", complete_s - req.arrival_s)
            metrics.observe("serve/queue_wait_s", dispatch_s - req.arrival_s)
            if monitor is not None:
                monitor.record("serve/latency_s", complete_s - req.arrival_s,
                               t=complete_s)

        duration = 0.0
        while heap:
            now, kind, _, payload = heapq.heappop(heap)
            duration = max(duration, now)
            if kind == _COMPLETE:
                replica, batch, start, outputs = payload
                for i, req in enumerate(batch):
                    output = outputs[i] if outputs is not None else None
                    if self.cache is not None:
                        evicted_before = self.cache.evictions
                        self.cache.put(self._key(req), output)
                        metrics.inc("serve/cache/evictions",
                                    self.cache.evictions - evicted_before)
                    respond(req, start, now, replica, len(batch),
                            cache_hit=False, output=output)
            elif kind == _ARRIVAL:
                req = payload
                shed_this = 0.0
                hit = _MISS_SENTINEL
                if self.cache is not None:
                    hit = self.cache.get(self._key(req), _MISS_SENTINEL)
                    if hit is _MISS_SENTINEL:
                        metrics.inc("serve/cache/misses")
                    else:
                        metrics.inc("serve/cache/hits")
                if hit is not _MISS_SENTINEL:
                    end = now + self.hit_latency_s
                    duration = max(duration, end)
                    respond(req, now, end, None, 1, cache_hit=True,
                            output=hit)
                elif (self.max_queue_depth is not None
                      and len(pending) >= self.max_queue_depth):
                    # admission control: the queue is full — shed rather
                    # than let it (and tail latency) grow without bound.
                    # Shed responses stay out of the latency histograms so
                    # rejections can't masquerade as fast service.
                    metrics.inc("serve/shed")
                    metrics.inc("serve/requests")
                    shed_this = 1.0
                    responses[req.rid] = Response(
                        request=req, dispatch_s=now, complete_s=now,
                        replica=None, batch_size=0, cache_hit=False,
                        output=None, status="shed")
                else:
                    pending.append(req)
                    push(req.arrival_s + self.policy.max_wait_s,
                         _DEADLINE, None)
                    maybe_scale_up(now)
                metrics.observe("serve/queue_depth", len(pending))
                if monitor is not None:
                    monitor.record("serve/queue_depth", len(pending), t=now)
                    monitor.record("serve/shed_event", shed_this, t=now)
            # _DEADLINE events carry no state; they exist to wake the
            # batcher at the max-wait boundary
            try_dispatch(now)
            maybe_scale_down(now)
            if pending and not heap:
                # all arrivals and completions processed but requests
                # remain queued: wake at the earliest dispatch opportunity
                wake = min(min(free_at(r) for r in range(self.n_replicas)
                               if active[r]),
                           pending[0].arrival_s + self.policy.max_wait_s)
                push(max(wake, now), _DEADLINE, None)

        # ---------------- close out: roots, gauges ---------------- #
        for r, opened in window_open.items():
            replica_seconds[r] += duration - opened
        metrics.gauge("serve/replica_seconds", sum(replica_seconds))
        utilization: dict[int, float] = {}
        for r in range(self.n_replicas):
            util = busy_s[r] / duration if duration else 0.0
            utilization[r] = util
            metrics.inc(f"serve/replica/{r}/busy_s", busy_s[r])
            metrics.gauge(f"serve/replica/{r}/utilization", util)
            spans.append(Span(
                name="serve/replica", cat="serve", rank=self.home_rank(r),
                start_s=0.0, dur_s=duration, depth=0,
                args={"replica": r, "ranks": self.replica_ranks(r),
                      "utilization": util,
                      "active_s": replica_seconds[r], "modeled": True}))
        if self.cache is not None:
            metrics.gauge("serve/cache/hit_rate", self.cache.hit_rate)
            metrics.gauge("serve/cache/size", len(self.cache))
        metrics.gauge("serve/duration_s", duration)
        if duration:
            metrics.gauge("serve/throughput_rps", len(responses) / duration)
        ordered = [responses[rid] for rid in sorted(responses)]
        if any(resp is None for resp in ordered):
            raise RuntimeError("scheduler dropped a request")  # unreachable
        return ServeResult(responses=ordered, spans=spans, metrics=metrics,
                           duration_s=duration, n_replicas=self.n_replicas,
                           gpus_per_replica=self.gpus_per_replica,
                           utilization=utilization)

    # ------------------------------------------------------------------ #
    # the tile-granular event loop
    # ------------------------------------------------------------------ #
    def _run_tiled(self, requests: list[Request], monitor=None) -> ServeResult:
        """Serve with the tile as the scheduling unit.

        Each admitted request is split into its plan's halo tiles; hits
        resolve from the tile cache at arrival, misses become tile
        *jobs*.  Jobs are deduplicated by key across requests (two
        requests wanting the same tile content share one compute — the
        second becomes a waiter) and batched per halo-shape signature so
        every dispatched batch replays one compiled program.  A request
        responds when its last tile resolves; the reassembled output is
        bitwise identical to the whole-request path.
        """
        plan = self.tile_plan
        n_t = plan.n_tiles
        clock = SimClock.frozen()
        metrics = MetricsRegistry()
        spans: list[Span] = []
        responses: dict[int, Response] = {}
        pending: list[dict] = []        # FIFO queue of missed-tile jobs
        open_jobs: dict[str, dict] = {}  # key -> job, queued or in flight
        assemblies: dict[int, dict] = {}  # rid -> in-progress reassembly
        busy_s = [0.0] * self.n_replicas
        free = [0.0] * self.n_replicas
        batches = 0
        start_active = (self.autoscale.min_replicas
                        if self.autoscale is not None else self.n_replicas)
        active = [r < start_active for r in range(self.n_replicas)]
        window_open: dict[int, float] = {r: 0.0 for r in range(start_active)}
        replica_seconds = [0.0] * self.n_replicas
        last_scale = float("-inf")

        heap: list[tuple[float, int, int, object]] = []
        seq = 0

        def push(t: float, kind: int, payload) -> None:
            nonlocal seq
            heapq.heappush(heap, (t, kind, seq, payload))
            seq += 1

        for req in sorted(requests, key=lambda r: (r.arrival_s, r.rid)):
            if req.rid in responses:
                raise ValueError(f"duplicate request id {req.rid}")
            responses[req.rid] = None
            push(req.arrival_s, _ARRIVAL, req)

        def tile_key(req: Request, i: int) -> str:
            return plan.tile_key(i, input=req.input,
                                 versions=req.tile_versions,
                                 sample=req.sample, epoch=self.plan_epoch)

        def maybe_scale_up(now: float) -> None:
            au = self.autoscale
            if au is None:
                return
            nonlocal last_scale
            n_act = sum(active)
            if (n_act < self.n_replicas
                    and len(pending) >= au.scale_up_depth * n_act
                    and now - last_scale >= au.cooldown_s):
                r = active.index(False)
                active[r] = True
                free[r] = max(free[r], now + au.spinup_s)
                window_open[r] = now
                last_scale = now
                metrics.inc("serve/scale_up")
                if monitor is not None:
                    monitor.event("scale_up", t=now, replica=r,
                                  queue_depth=len(pending),
                                  active=sum(active))
                spans.append(Span(
                    name="serve/scale_up", cat="serve",
                    rank=self.home_rank(r), start_s=now, dur_s=au.spinup_s,
                    depth=1, args={"replica": r, "queue_depth": len(pending),
                                   "modeled": True}))
                push(now + au.spinup_s, _DEADLINE, None)

        def maybe_scale_down(now: float) -> None:
            au = self.autoscale
            if au is None or pending:
                return
            nonlocal last_scale
            if sum(active) <= au.min_replicas or now - last_scale < au.cooldown_s:
                return
            for r in reversed(range(self.n_replicas)):
                if active[r] and free[r] <= now:
                    active[r] = False
                    replica_seconds[r] += now - window_open.pop(r)
                    last_scale = now
                    metrics.inc("serve/scale_down")
                    if monitor is not None:
                        monitor.event("scale_down", t=now, replica=r,
                                      active=sum(active))
                    break

        def try_dispatch(now: float) -> None:
            nonlocal batches
            while pending:
                idle = [r for r in range(self.n_replicas)
                        if active[r] and free[r] <= now]
                if not idle:
                    return
                # the batch leads with the oldest job's signature: tiles
                # in one batch share a halo shape, so one compiled plan
                # serves the whole forward
                sig = pending[0]["sig"]
                same_sig = [j for j in pending if j["sig"] == sig]
                full = len(same_sig) >= self.policy.max_batch
                due = pending[0]["arrival_s"] + self.policy.max_wait_s <= now
                if not (full or due):
                    return
                batch = same_sig[: self.policy.max_batch]
                taken = set(map(id, batch))
                pending[:] = [j for j in pending if id(j) not in taken]
                replica = idle[0]
                dur = float(self.tile_service_time(len(batch), sig))
                if dur < 0.0:
                    raise ValueError(
                        "service_time returned a negative duration")
                end = now + dur
                free[replica] = end
                for rank in self.replica_ranks(replica):
                    clock.advance(rank, max(0.0, end - clock.now(rank)))
                busy_s[replica] += dur
                batches += 1
                metrics.inc("serve/batches")
                metrics.inc(f"serve/replica/{replica}/batches")
                metrics.observe("serve/batch_size", len(batch))
                metrics.observe("serve/tile/batch_occupancy",
                                len(batch) / self.policy.max_batch)
                spans.append(Span(
                    name="serve/batch", cat="serve",
                    rank=self.home_rank(replica), start_s=now, dur_s=dur,
                    depth=1,
                    args={"replica": replica, "batch_size": len(batch),
                          "tiles": [j["tile"] for j in batch],
                          "signature": list(sig), "modeled": True}))
                # child spans: the dispatch overhead leads, then the
                # tiles run back to back inside the batch window
                dispatch_s = getattr(self.tile_service_time,
                                     "dispatch_s", 0.0)
                tile_s = max(0.0, dur - dispatch_s) / len(batch)
                t0 = now + (dur - tile_s * len(batch))
                for k, j in enumerate(batch):
                    spans.append(Span(
                        name="serve/tile", cat="serve",
                        rank=self.home_rank(replica),
                        start_s=t0 + k * tile_s, dur_s=tile_s, depth=2,
                        args={"tile": j["tile"],
                              "waiters": len(j["waiters"]),
                              "modeled": True}))
                outputs = None
                if self._runner is not None:
                    outputs = [self._execute_tile(j["input"], j["tile"])
                               for j in batch]
                push(end, _COMPLETE, (replica, batch, now, outputs))

        def respond(req: Request, dispatch_s: float, complete_s: float,
                    replica: int | None, batch_size: int, cache_hit: bool,
                    output, hits: int, computed: int) -> None:
            responses[req.rid] = Response(
                request=req, dispatch_s=dispatch_s, complete_s=complete_s,
                replica=replica, batch_size=batch_size, cache_hit=cache_hit,
                output=output, tiles=n_t, tiles_hit=hits,
                tiles_computed=computed)
            metrics.inc("serve/requests")
            metrics.observe("serve/latency_s", complete_s - req.arrival_s)
            metrics.observe("serve/queue_wait_s", dispatch_s - req.arrival_s)
            if monitor is not None:
                monitor.record("serve/latency_s", complete_s - req.arrival_s,
                               t=complete_s)

        duration = 0.0
        while heap:
            now, kind, _, payload = heapq.heappop(heap)
            duration = max(duration, now)
            if kind == _COMPLETE:
                replica, batch, start, outputs = payload
                for idx, job in enumerate(batch):
                    core = outputs[idx] if outputs is not None else True
                    if self.cache is not None:
                        evicted_before = self.cache.evictions
                        self.cache.put(job["key"], core)
                        metrics.inc("serve/cache/evictions",
                                    self.cache.evictions - evicted_before)
                    open_jobs.pop(job["key"], None)
                    for rid, tile in job["waiters"]:
                        asm = assemblies[rid]
                        asm["remaining"] -= 1
                        asm["computed"] += 1
                        if asm["cores"] is not None:
                            asm["cores"][tile] = core
                        if asm["dispatch_s"] is None:
                            asm["dispatch_s"] = start
                        if asm["remaining"] == 0:
                            req = asm["req"]
                            output = None
                            if asm["cores"] is not None:
                                output = self._assemble(asm["cores"])
                            # a coalesced tile may have been dispatched
                            # before this request arrived — queue wait
                            # is never negative
                            dispatch = max(asm["dispatch_s"], req.arrival_s)
                            respond(req, dispatch, now, replica, len(batch),
                                    cache_hit=False, output=output,
                                    hits=asm["hits"],
                                    computed=asm["computed"])
                            del assemblies[rid]
            elif kind == _ARRIVAL:
                req = payload
                shed_this = 0.0
                keys = [tile_key(req, i) for i in range(n_t)]
                # membership pre-check (touches no cache counters): the
                # shed decision must not pollute hit/miss accounting
                needs_new = [
                    i for i, k in enumerate(keys)
                    if k not in open_jobs
                    and (self.cache is None or k not in self.cache)]
                if (needs_new and self.max_queue_depth is not None
                        and len(pending) >= self.max_queue_depth):
                    metrics.inc("serve/shed")
                    metrics.inc("serve/requests")
                    shed_this = 1.0
                    responses[req.rid] = Response(
                        request=req, dispatch_s=now, complete_s=now,
                        replica=None, batch_size=0, cache_hit=False,
                        output=None, status="shed", tiles=n_t)
                else:
                    cores = [None] * n_t if self._runner is not None else None
                    hits = 0
                    remaining = 0
                    for i in range(n_t):
                        value = _MISS_SENTINEL
                        if self.cache is not None:
                            value = self.cache.get(keys[i], _MISS_SENTINEL)
                        if value is not _MISS_SENTINEL:
                            hits += 1
                            metrics.inc("serve/tile/hits")
                            if cores is not None:
                                cores[i] = value
                            continue
                        metrics.inc("serve/tile/misses")
                        remaining += 1
                        job = open_jobs.get(keys[i])
                        if job is not None:
                            # identical tile already queued or in flight
                            # (another request, or a duplicate-content
                            # tile of this one): wait on its compute
                            job["waiters"].append((req.rid, i))
                            metrics.inc("serve/tile/coalesced")
                        else:
                            job = {"key": keys[i], "tile": i,
                                   "sig": plan.signature(i),
                                   "arrival_s": now, "input": req.input,
                                   "waiters": [(req.rid, i)]}
                            open_jobs[keys[i]] = job
                            pending.append(job)
                    if remaining == 0:
                        end = now + self.hit_latency_s
                        duration = max(duration, end)
                        output = (self._assemble(cores)
                                  if cores is not None else None)
                        respond(req, now, end, None, 1, cache_hit=True,
                                output=output, hits=hits, computed=0)
                    else:
                        assemblies[req.rid] = {
                            "req": req, "cores": cores,
                            "remaining": remaining, "hits": hits,
                            "computed": 0, "dispatch_s": None,
                        }
                        if needs_new:
                            push(req.arrival_s + self.policy.max_wait_s,
                                 _DEADLINE, None)
                        maybe_scale_up(now)
                    if monitor is not None:
                        monitor.record("serve/tile_miss_rate",
                                       remaining / n_t, t=now)
                metrics.observe("serve/queue_depth", len(pending))
                if monitor is not None:
                    monitor.record("serve/queue_depth", len(pending), t=now)
                    monitor.record("serve/shed_event", shed_this, t=now)
            try_dispatch(now)
            maybe_scale_down(now)
            if pending and not heap:
                wake = min(min(free[r] for r in range(self.n_replicas)
                               if active[r]),
                           pending[0]["arrival_s"] + self.policy.max_wait_s)
                push(max(wake, now), _DEADLINE, None)

        # ---------------- close out: roots, gauges ---------------- #
        for r, opened in window_open.items():
            replica_seconds[r] += duration - opened
        metrics.gauge("serve/replica_seconds", sum(replica_seconds))
        utilization: dict[int, float] = {}
        for r in range(self.n_replicas):
            util = busy_s[r] / duration if duration else 0.0
            utilization[r] = util
            metrics.inc(f"serve/replica/{r}/busy_s", busy_s[r])
            metrics.gauge(f"serve/replica/{r}/utilization", util)
            spans.append(Span(
                name="serve/replica", cat="serve", rank=self.home_rank(r),
                start_s=0.0, dur_s=duration, depth=0,
                args={"replica": r, "ranks": self.replica_ranks(r),
                      "utilization": util,
                      "active_s": replica_seconds[r], "modeled": True}))
        if self.cache is not None:
            metrics.gauge("serve/cache/hit_rate", self.cache.hit_rate)
            metrics.gauge("serve/cache/size", len(self.cache))
        th = metrics.counters.get("serve/tile/hits", 0.0)
        tm = metrics.counters.get("serve/tile/misses", 0.0)
        metrics.gauge("serve/tile/hit_rate",
                      th / (th + tm) if th + tm else 0.0)
        metrics.gauge("serve/duration_s", duration)
        if duration:
            metrics.gauge("serve/throughput_rps", len(responses) / duration)
        ordered = [responses[rid] for rid in sorted(responses)]
        if any(resp is None for resp in ordered):
            raise RuntimeError("scheduler dropped a request")  # unreachable
        return ServeResult(responses=ordered, spans=spans, metrics=metrics,
                           duration_s=duration, n_replicas=self.n_replicas,
                           gpus_per_replica=self.gpus_per_replica,
                           utilization=utilization)
